"""Configuration dataclasses mirroring the paper's simulated system.

The defaults reproduce Table III of the paper: an 8-core 3 GHz in-order
processor with 32 KB L1 / 256 KB L2 / 8 MB shared L3 caches over an 8 GB TLC
RRAM main memory with 4 channels, 8 banks, an FRFCFS-WQF scheduler with a
64-entry write queue and an 80 % drain watermark.  The TLC program latency
and energy tables come straight from the paper (which takes them from the
CompEx / IDM / CRADE line of work).
"""

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

from repro.common.errors import ConfigError

# Per-level TLC RRAM program latency in nanoseconds (Table III).  The key is
# the 3-bit target level.
TLC_WRITE_LATENCY_NS: Dict[int, float] = {
    0b000: 15.2,
    0b001: 46.8,
    0b010: 98.3,
    0b011: 143.0,
    0b100: 150.0,
    0b101: 101.0,
    0b110: 52.7,
    0b111: 12.1,
}

# Per-level TLC RRAM program energy in picojoules per cell (Table III).
TLC_WRITE_ENERGY_PJ: Dict[int, float] = {
    0b000: 2.0,
    0b001: 6.7,
    0b010: 19.3,
    0b011: 35.1,
    0b100: 35.6,
    0b101: 19.6,
    0b110: 8.5,
    0b111: 1.5,
}

TLC_READ_LATENCY_NS = 25.0


@dataclass(frozen=True)
class CoreConfig:
    """Processor core parameters (Table III, "Cores")."""

    n_cores: int = 8
    freq_ghz: float = 3.0
    # Fixed pipeline cost charged per executed operation, in cycles.  The
    # paper's cores are in-order single-issue; non-memory work between
    # stores is folded into this constant.
    base_op_cycles: int = 1
    # Stores that hit in the L1 retire through the store buffer in one
    # cycle instead of paying the full L1 access latency.
    store_hit_cycles: int = 1

    @property
    def ns_per_cycle(self) -> float:
        return 1.0 / self.freq_ghz

    def cycles_from_ns(self, ns: float) -> float:
        return ns * self.freq_ghz


@dataclass(frozen=True)
class CacheLevelConfig:
    """One level of the cache hierarchy."""

    size_bytes: int
    assoc: int
    line_bytes: int
    latency_cycles: int
    shared: bool = False

    @property
    def n_sets(self) -> int:
        n_lines = self.size_bytes // self.line_bytes
        if n_lines % self.assoc:
            raise ConfigError("cache size not divisible by associativity")
        return n_lines // self.assoc


@dataclass(frozen=True)
class CacheConfig:
    """Three-level hierarchy (Table III)."""

    l1: CacheLevelConfig = field(
        default_factory=lambda: CacheLevelConfig(32 * 1024, 8, 64, 4)
    )
    l2: CacheLevelConfig = field(
        default_factory=lambda: CacheLevelConfig(256 * 1024, 8, 64, 12)
    )
    l3: CacheLevelConfig = field(
        default_factory=lambda: CacheLevelConfig(8 * 1024 * 1024, 16, 64, 28, shared=True)
    )

    @property
    def line_bytes(self) -> int:
        return self.l1.line_bytes


@dataclass(frozen=True)
class NVMConfig:
    """TLC RRAM main memory (Table III, "Main Memory")."""

    size_bytes: int = 8 * 1024 ** 3
    channels: int = 4
    ranks: int = 1
    banks: int = 8
    read_latency_ns: float = TLC_READ_LATENCY_NS
    # FRFCFS-WQF write queue
    write_queue_entries: int = 64
    drain_watermark: float = 0.8
    bits_per_cell: int = 3
    # Multiplier applied to every per-level program latency; the section
    # VI-E sensitivity study sweeps this from 1x to 32x.
    write_latency_scale: float = 1.0
    # Fixed per-access overhead (row activation, bus transfer), ns.
    access_overhead_ns: float = 10.0

    def write_latency_ns(self, level: int) -> float:
        return TLC_WRITE_LATENCY_NS[level] * self.write_latency_scale

    def write_energy_pj(self, level: int) -> float:
        return TLC_WRITE_ENERGY_PJ[level]

    @property
    def n_banks_total(self) -> int:
        return self.channels * self.ranks * self.banks


@dataclass(frozen=True)
class LoggingConfig:
    """Hardware logging parameters (sections III and VI-A)."""

    # Default buffer sizes from section VI-A.
    undo_redo_buffer_entries: int = 16
    redo_buffer_entries: int = 32
    # Entries are eagerly evicted N cycles after insertion, where N must be
    # below the minimum latency of traversing the cache hierarchy
    # (section III-B).  With 4+12+28 cycle caches the paper's bound is the
    # L1+L2+L3 traversal; we use the sum of the three latencies.
    eager_evict_cycles: int = 44
    # Delay-persistence commit protocol (section III-C).
    delay_persistence: bool = False
    # Force-write-back scan period in cycles (section VI-A: every 3M cycles).
    fwb_interval_cycles: int = 3_000_000
    # Log region size in bytes.
    log_region_bytes: int = 64 * 1024 * 1024
    # Centralized vs distributed (per-thread) logs (section III-F).
    distributed_logs: bool = False
    # Reproduce the paper's literal "discard redo entries when the LLC
    # evicts the line" (section III-A).  Unsafe for recovery (see
    # DESIGN.md); the default logs the entry at write-back instead.
    unsafe_llc_redo_discard: bool = False
    # Log management (section III-F): "fwb-scan" frees entries of
    # transactions committed before the last two force-write-back scans;
    # "tx-table" keeps a per-transaction count of cache lines still
    # holding its updates and frees as soon as it reaches zero.
    truncation: str = "fwb-scan"
    # --- Extension designs (comparative testbed, ROADMAP item 3) ---
    # InCLL-CRADE: embedded undo slots reserved per cache line; stores
    # beyond this count within one epoch overflow to the central log.
    incll_slots_per_line: int = 2
    # CoW-Page: shadow-page granularity in bytes (power of two, a
    # multiple of the 64-byte line).
    page_bytes: int = 4096
    # Ckpt-Undo: checkpoint after this many commits, then compact the
    # log by dropping entries the checkpoint superseded.  0 disables
    # checkpointing (plain undo-only behaviour).
    checkpoint_interval_tx: int = 8


@dataclass(frozen=True)
class EncodingConfig:
    """Data encoding pipeline configuration (section IV)."""

    # Codec for in-place (non-log) data: "crade", "fpc", "raw",
    # "flip-n-write".
    data_codec: str = "crade"
    # Codec for log data: "slde" (DLDC + alternative in parallel) or the
    # same choices as data_codec.
    log_codec: str = "slde"
    # Expansion coding can be disabled to count raw log bits (Table VI).
    expansion_enabled: bool = True
    # Bytes of log data covered by one dirty-flag bit (section VI-A: one
    # flag bit per log data byte).
    dirty_flag_granularity_bytes: int = 1
    # Secure-NVMM interaction (section IV-D): "none" (plaintext),
    # "full" (naive counter-mode encryption — every dirty word becomes
    # fully dirty, incompressible ciphertext), "deuce" (DEUCE re-encrypts
    # only dirty words, so clean words — and silent log writes — survive).
    secure_mode: str = "none"
    # Codec-result memoization (repro.encoding.memo).  Result-inert: it
    # never changes encodings, stats, traces, or recovery outcomes, only
    # simulation wall-clock — so these knobs are excluded from grid
    # result-cache keys (see repro.experiments.serialize).
    codec_memo: bool = True
    # Bound of each per-codec LRU, in entries.
    codec_memo_entries: int = 8192


@dataclass(frozen=True)
class SystemConfig:
    """Everything needed to build a :class:`repro.core.system.System`."""

    cores: CoreConfig = field(default_factory=CoreConfig)
    caches: CacheConfig = field(default_factory=CacheConfig)
    nvm: NVMConfig = field(default_factory=NVMConfig)
    logging: LoggingConfig = field(default_factory=LoggingConfig)
    encoding: EncodingConfig = field(default_factory=EncodingConfig)
    # Base physical address of persistent (NVMM) data; DRAM sits below.
    nvmm_base: int = 0x1_0000_0000
    seed: int = 42

    def validate(self) -> None:
        if self.cores.n_cores <= 0:
            raise ConfigError("n_cores must be positive")
        if not 0.0 < self.nvm.drain_watermark <= 1.0:
            raise ConfigError("drain watermark must be in (0, 1]")
        if self.logging.undo_redo_buffer_entries <= 0:
            raise ConfigError("undo+redo buffer needs at least one entry")
        if self.logging.redo_buffer_entries < 0:
            raise ConfigError("redo buffer size cannot be negative")
        if self.caches.l1.line_bytes != 64:
            raise ConfigError("the model assumes 64-byte cache lines")
        data_codecs = {"crade", "fpc", "bdi", "raw", "flip-n-write"}
        if self.encoding.data_codec not in data_codecs:
            raise ConfigError("unknown data codec %r" % self.encoding.data_codec)
        if self.encoding.log_codec not in data_codecs | {"slde", "slde-bdi"}:
            raise ConfigError("unknown log codec %r" % self.encoding.log_codec)
        if self.logging.truncation not in {"fwb-scan", "tx-table"}:
            raise ConfigError(
                "unknown truncation policy %r" % self.logging.truncation
            )
        if not 1 <= self.logging.incll_slots_per_line <= 8:
            raise ConfigError(
                "incll_slots_per_line must be in [1, 8]"
            )
        page = self.logging.page_bytes
        if page < 64 or page % 64 or page & (page - 1):
            raise ConfigError(
                "page_bytes must be a power-of-two multiple of 64"
            )
        if self.logging.checkpoint_interval_tx < 0:
            raise ConfigError("checkpoint_interval_tx cannot be negative")
        if self.encoding.secure_mode not in {"none", "full", "deuce"}:
            raise ConfigError(
                "unknown secure mode %r" % self.encoding.secure_mode
            )
        if self.encoding.codec_memo and self.encoding.codec_memo_entries <= 0:
            raise ConfigError("codec_memo_entries must be positive")

    def with_changes(self, **kwargs) -> "SystemConfig":
        """Return a copy with top-level fields replaced."""
        return replace(self, **kwargs)


def tlc_levels_sorted_by_latency() -> Tuple[int, ...]:
    """TLC levels from fastest to slowest program latency.

    Expansion coding (IDM / CompEx) restricts writes to the fastest subset
    of levels; this ordering defines those subsets.
    """
    return tuple(sorted(TLC_WRITE_LATENCY_NS, key=TLC_WRITE_LATENCY_NS.get))


def tlc_levels_sorted_by_energy() -> Tuple[int, ...]:
    """TLC levels from cheapest to most expensive program energy."""
    return tuple(sorted(TLC_WRITE_ENERGY_PJ, key=TLC_WRITE_ENERGY_PJ.get))
