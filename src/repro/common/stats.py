"""Statistics primitives: counters, histograms, and derived metrics.

Every component of the simulator owns a :class:`StatGroup`; the system
aggregates them into one report.  Histograms use the bucket scheme of the
paper's Figure 3 (write distance: First / 0-1 / 2-3 / ... / >=128).
"""

import math
from collections import OrderedDict
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple


class StatGroup:
    """A named bag of additive counters.

    Counters spring into existence on first use so components do not need
    a registration step.  Reports canonicalize to sorted key order:
    insertion order depends on execution history (with :meth:`merge` over
    disjoint key sets it even depends on which worker's group arrives
    first), so it must never leak into anything that gets compared,
    hashed, or diffed.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._counters: "OrderedDict[str, float]" = OrderedDict()

    def add(self, key: str, amount: float = 1.0) -> None:
        self._counters[key] = self._counters.get(key, 0.0) + amount

    def set(self, key: str, value: float) -> None:
        self._counters[key] = value

    def get(self, key: str, default: float = 0.0) -> float:
        return self._counters.get(key, default)

    def merge(self, other: "StatGroup") -> None:
        for key, value in other._counters.items():
            self.add(key, value)

    def as_dict(self) -> Dict[str, float]:
        return dict(sorted(self._counters.items()))

    def reset(self) -> None:
        self._counters.clear()

    def __contains__(self, key: str) -> bool:
        return key in self._counters

    def __repr__(self) -> str:
        return "StatGroup(%r, %d counters)" % (self.name, len(self._counters))


# Bucket upper bounds for the Figure 3 write-distance distribution.  The
# label "First Write" is handled separately; distances land in the bucket
# whose range contains them.
WRITE_DISTANCE_BUCKETS: Tuple[Tuple[int, Optional[int], str], ...] = (
    (0, 1, "0-1"),
    (2, 3, "2-3"),
    (4, 7, "4-7"),
    (8, 15, "8-15"),
    (16, 31, "16-31"),
    (32, 63, "32-63"),
    (64, 127, "64-127"),
    (128, None, ">=128"),
)


class Histogram:
    """Fixed-bucket histogram over non-negative integers."""

    def __init__(
        self,
        buckets: Sequence[Tuple[int, Optional[int], str]] = WRITE_DISTANCE_BUCKETS,
    ) -> None:
        self._buckets = tuple(buckets)
        self._counts: List[int] = [0] * len(self._buckets)
        self._total = 0

    def observe(self, value: int, weight: int = 1) -> None:
        if value < 0:
            raise ValueError("histogram values must be non-negative")
        for i, (lo, hi, _label) in enumerate(self._buckets):
            if value >= lo and (hi is None or value <= hi):
                self._counts[i] += weight
                self._total += weight
                return
        raise ValueError("value %d fits no bucket" % value)

    @property
    def total(self) -> int:
        return self._total

    def counts(self) -> "OrderedDict[str, int]":
        out: "OrderedDict[str, int]" = OrderedDict()
        for (_lo, _hi, label), count in zip(self._buckets, self._counts):
            out[label] = count
        return out

    def proportions(self) -> "OrderedDict[str, float]":
        total = self._total or 1
        out: "OrderedDict[str, float]" = OrderedDict()
        for label, count in self.counts().items():
            out[label] = count / total
        return out

    def merge(self, other: "Histogram") -> None:
        if self._buckets != other._buckets:
            raise ValueError("cannot merge histograms with different buckets")
        for i, count in enumerate(other._counts):
            self._counts[i] += count
        self._total += other._total


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean, as the paper uses for normalized throughput (Gmean)."""
    values = list(values)
    if not values:
        raise ValueError("geometric mean of no values")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def normalize(values: Mapping[str, float], baseline_key: str) -> Dict[str, float]:
    """Normalize a mapping of design -> metric to one design (Figs 12-14)."""
    baseline = values[baseline_key]
    if baseline == 0:
        raise ValueError("baseline metric is zero")
    return {key: value / baseline for key, value in values.items()}
