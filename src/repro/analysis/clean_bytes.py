"""Figure 5: percentage of clean bytes among transactionally updated data."""

from typing import Optional

from repro.analysis.trace import TraceCollector
from repro.common.config import SystemConfig
from repro.core.designs import make_system
from repro.workloads.base import WorkloadParams, make_workload


def clean_byte_percentage(
    workload_name: str,
    n_transactions: int = 300,
    n_threads: int = 4,
    params: Optional[WorkloadParams] = None,
    config: Optional[SystemConfig] = None,
) -> float:
    """Percentage (0-100) of clean bytes among transactional updates."""
    system = make_system("FWB-CRADE", config)
    collector = TraceCollector(track_patterns=False)
    system.trace = collector
    workload = make_workload(workload_name, params)
    system.run(workload, n_transactions, n_threads)
    return 100.0 * collector.clean_byte_fraction
