"""Plain-text table rendering for the experiment harness."""

from typing import List, Mapping, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: Optional[str] = None,
    float_format: str = "%.3f",
) -> str:
    """Render rows as a fixed-width text table (harness output)."""
    rendered: List[List[str]] = []
    for row in rows:
        rendered.append(
            [
                float_format % cell if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_bars(
    values: Mapping[str, float],
    title: Optional[str] = None,
    width: int = 40,
    unit: str = "",
) -> str:
    """Render a mapping as a horizontal ASCII bar chart.

    Used by the CLI and examples so figure shapes are eyeballable in a
    terminal without plotting dependencies.
    """
    if not values:
        raise ValueError("nothing to chart")
    peak = max(values.values())
    if peak <= 0:
        peak = 1.0
    label_width = max(len(k) for k in values)
    lines: List[str] = []
    if title:
        lines.append(title)
    for key, value in values.items():
        bar = "#" * max(int(round(width * value / peak)), 0)
        lines.append(
            "%s  %s %.3f%s" % (key.ljust(label_width), bar.ljust(width), value, unit)
        )
    return "\n".join(lines)


def format_normalized(
    metric_by_design: Mapping[str, Mapping[str, float]],
    baseline: str,
    title: Optional[str] = None,
) -> str:
    """Render {workload: {design: value}} normalized to one design."""
    designs = sorted({d for values in metric_by_design.values() for d in values})
    if baseline not in designs:
        raise ValueError("baseline %r missing from results" % baseline)
    headers = ["workload"] + designs
    rows = []
    for workload, values in metric_by_design.items():
        base = values[baseline]
        rows.append(
            [workload] + [values.get(d, float("nan")) / base for d in designs]
        )
    return format_table(headers, rows, title)
