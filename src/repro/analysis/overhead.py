"""Hardware-overhead arithmetic: Table I and the SLDE costs (section IV-C).

These are closed-form functions of the configuration, reproduced exactly
from the paper's formulas so the bench can print Table I for any config.
"""

from dataclasses import dataclass
from typing import Dict

from repro.common.config import SystemConfig

# Buffer entry field widths (Figure 7), in bits.
ENTRY_TYPE_BITS = 2
ENTRY_TID_BITS = 8
ENTRY_TXID_BITS = 16
ENTRY_ADDR_BITS = 48
WORD_BITS = 64

# L1 line extensions (Figure 7): 8-bit TID + 16-bit TxID + 16-bit state.
L1_EXT_BITS = 8 + 16 + 16

# Synthesis results the paper reports for the SLDE codec (section IV-C).
SLDE_LOGIC_GATES = 4200
SLDE_ENCODE_LATENCY_NS = 1.0
SLDE_ENCODE_ENERGY_PJ = 1.4
SLDE_DECODE_ENERGY_PJ = 1.3


def _entry_bits(n_data_words: int, with_dirty_flag: bool, dirty_flag_granularity: int) -> int:
    bits = (
        ENTRY_TYPE_BITS
        + ENTRY_TID_BITS
        + ENTRY_TXID_BITS
        + ENTRY_ADDR_BITS
        + n_data_words * WORD_BITS
    )
    if with_dirty_flag:
        bits += n_data_words * WORD_BITS // (8 * dirty_flag_granularity)
    return bits


@dataclass(frozen=True)
class HardwareOverhead:
    """Table I, parameterized by the configuration."""

    log_registers_bytes: int
    l1_extension_bits_per_line: int
    undo_redo_buffer_bytes: float
    redo_buffer_bytes: float
    ulog_counters_bytes: float


def morphable_logging_overhead(config: SystemConfig) -> HardwareOverhead:
    """Reproduce Table I for any configuration.

    With the paper's defaults (16-entry undo+redo buffer, 32-entry redo
    buffer, byte-granularity dirty flags, 8 hardware threads) this yields
    the published 16 B registers / 40-bit line extension / 404 B / 552 B /
    20 B rows.
    """
    with_dirty = config.encoding.log_codec == "slde"
    gran = config.encoding.dirty_flag_granularity_bytes
    ur_bits = _entry_bits(2, with_dirty, gran)
    redo_bits = _entry_bits(1, with_dirty, gran)
    l1_bits = L1_EXT_BITS
    if with_dirty:
        # One dirty flag bit per byte of each 64-bit word in the line.
        l1_bits += (64 // gran)
    return HardwareOverhead(
        log_registers_bytes=16,
        l1_extension_bits_per_line=l1_bits,
        undo_redo_buffer_bytes=config.logging.undo_redo_buffer_entries * ur_bits / 8,
        redo_buffer_bytes=config.logging.redo_buffer_entries * redo_bits / 8,
        ulog_counters_bytes=(
            config.cores.n_cores * 20 / 8 if config.logging.delay_persistence else 0.0
        ),
    )


def slde_overhead(config: SystemConfig) -> Dict[str, float]:
    """Section IV-C: SLDE capacity / latency / logic / energy overheads."""
    gran = config.encoding.dirty_flag_granularity_bytes
    # Capacity overhead of dirty flags per entry type and L1 lines
    # (formulas from section IV-C: n/m flag bits over the entry size).
    ur_entry_bits = _entry_bits(2, False, gran)
    redo_entry_bits = _entry_bits(1, False, gran)
    return {
        "dirty_flag_overhead_ur_entry": (128 / (8 * gran)) / ur_entry_bits,
        "dirty_flag_overhead_redo_entry": (64 / (8 * gran)) / redo_entry_bits,
        "dirty_flag_overhead_l1_line": (64 / gran) / (64 * 8),
        # Metadata bit per 64-byte log block + encoding type flags.
        "flag_bit_overhead": 1 / 512 + max(3 / 202, 2 / 138),
        "logic_gates": SLDE_LOGIC_GATES,
        "encode_latency_ns": SLDE_ENCODE_LATENCY_NS,
        "encode_energy_pj": SLDE_ENCODE_ENERGY_PJ,
        "decode_energy_pj": SLDE_DECODE_ENERGY_PJ,
    }
