"""Table II: which DLDC patterns the dirty log data compress to."""

from collections import OrderedDict
from typing import Dict, Optional

from repro.analysis.trace import TraceCollector
from repro.common.config import SystemConfig
from repro.core.designs import make_system
from repro.workloads.base import WorkloadParams, make_workload


def dldc_pattern_census(
    workload_names,
    n_transactions: int = 200,
    n_threads: int = 4,
    params: Optional[WorkloadParams] = None,
    config: Optional[SystemConfig] = None,
) -> "OrderedDict[str, float]":
    """Average per-pattern fractions of dirty log data over workloads.

    Mirrors Table II's last column ("percentage of dirty log data that can
    be compressed with the given pattern", averaged over applications).
    """
    totals: "OrderedDict[str, float]" = OrderedDict()
    n_workloads = 0
    for name in workload_names:
        system = make_system("FWB-CRADE", config)
        collector = TraceCollector(track_patterns=True)
        system.trace = collector
        system.run(make_workload(name, params), n_transactions, n_threads)
        fractions = collector.pattern_fractions()
        for pattern, fraction in fractions.items():
            totals[pattern] = totals.get(pattern, 0.0) + fraction
        n_workloads += 1
    if n_workloads == 0:
        raise ValueError("no workloads given")
    return OrderedDict(
        (pattern, value / n_workloads) for pattern, value in totals.items()
    )
