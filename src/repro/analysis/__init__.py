"""Measurement taps and paper-figure analyses.

- :mod:`repro.analysis.trace` — the store-stream collector behind the
  motivation figures (the paper used PIN; we tap the simulator).
- :mod:`repro.analysis.write_distance` — Figure 3.
- :mod:`repro.analysis.clean_bytes` — Figure 5.
- :mod:`repro.analysis.patterns` — Table II's per-pattern census.
- :mod:`repro.analysis.overhead` — Table I and the SLDE overhead numbers.
- :mod:`repro.analysis.report` — plain-text table rendering.
"""

from repro.analysis.trace import TraceCollector
from repro.analysis.trace_io import (
    RecordingWorkload,
    TraceOp,
    TraceWorkload,
    load_trace,
    save_trace,
)
from repro.analysis.walcheck import WalChecker, attach_wal_checker
from repro.analysis.write_distance import write_distance_distribution
from repro.analysis.clean_bytes import clean_byte_percentage
from repro.analysis.patterns import dldc_pattern_census
from repro.analysis.overhead import morphable_logging_overhead, slde_overhead
from repro.analysis.report import format_bars, format_table

__all__ = [
    "TraceCollector",
    "RecordingWorkload",
    "TraceOp",
    "TraceWorkload",
    "load_trace",
    "save_trace",
    "WalChecker",
    "attach_wal_checker",
    "write_distance_distribution",
    "clean_byte_percentage",
    "dldc_pattern_census",
    "morphable_logging_overhead",
    "slde_overhead",
    "format_bars",
    "format_table",
]
