"""Figure 3: distribution of write distance for writes in transactions."""

from collections import OrderedDict
from typing import Dict, Optional

from repro.analysis.trace import TraceCollector
from repro.common.config import SystemConfig
from repro.core.designs import make_system
from repro.workloads.base import WorkloadParams, make_workload


def write_distance_distribution(
    workload_name: str,
    n_transactions: int = 300,
    n_threads: int = 4,
    params: Optional[WorkloadParams] = None,
    config: Optional[SystemConfig] = None,
) -> "OrderedDict[str, float]":
    """Run a workload under a trace tap and return the Figure 3 columns.

    The measurement is design-independent (it taps the raw store stream),
    so any design works; we use the baseline.
    """
    system = make_system("FWB-CRADE", config)
    collector = TraceCollector(track_patterns=False)
    system.trace = collector
    workload = make_workload(workload_name, params)
    system.run(workload, n_transactions, n_threads)
    return collector.distance_distribution()
