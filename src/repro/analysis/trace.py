"""Store-stream trace collection (the paper's PIN instrumentation).

The motivation studies (Figures 3 and 5, Table II) monitor the writes
inside transactions.  :class:`TraceCollector` plugs into
``System.trace`` and records, per thread:

- the word-granularity write-distance stream (writes between two writes to
  the same address, ``First Write`` for the first touch);
- clean/dirty byte counts per store;
- which DLDC pattern (if any) the dirty bytes of each store compress to.
"""

from collections import OrderedDict
from typing import Dict

from repro.common.bitops import WORD_BYTES, dirty_byte_mask, select_bytes
from repro.common.stats import Histogram
from repro.encoding.dldc import PATTERN_NAMES, dldc_compress_pattern


class TraceCollector:
    """Aggregates per-store measurements across a run."""

    def __init__(self, track_patterns: bool = True) -> None:
        self.distance = Histogram()
        self.first_writes = 0
        self.total_writes = 0
        self.clean_bytes = 0
        self.dirty_bytes = 0
        self.silent_stores = 0
        self.rewrites_in_tx = 0
        self._last_seen: Dict[int, Dict[int, int]] = {}
        self._write_counter: Dict[int, int] = {}
        self._tx_words: Dict[int, set] = {}
        self._tx_ids: Dict[int, int] = {}
        self.track_patterns = track_patterns
        self.pattern_counts: "OrderedDict[str, int]" = OrderedDict(
            (name, 0) for name in PATTERN_NAMES.values()
        )
        self.pattern_counts["uncompressed"] = 0
        self.pattern_dirty_bytes: "OrderedDict[str, int]" = OrderedDict(
            (name, 0) for name in self.pattern_counts
        )

    # ------------------------------------------------------------------
    # System hook
    # ------------------------------------------------------------------

    def on_tx_store(self, tid: int, txid: int, addr: int, old: int, new: int) -> None:
        self.total_writes += 1

        # Write distance (Figure 3), per-thread store stream.
        counter = self._write_counter.get(tid, 0)
        seen = self._last_seen.setdefault(tid, {})
        last = seen.get(addr)
        if last is None:
            self.first_writes += 1
        else:
            self.distance.observe(counter - last - 1)
        seen[addr] = counter
        self._write_counter[tid] = counter + 1

        # Same-transaction rewrites (CONSEQUENCE 1's coalescing potential).
        if self._tx_ids.get(tid) != txid:
            self._tx_ids[tid] = txid
            self._tx_words[tid] = set()
        tx_words = self._tx_words[tid]
        if addr in tx_words:
            self.rewrites_in_tx += 1
        else:
            tx_words.add(addr)

        # Clean bytes (Figure 5).
        mask = dirty_byte_mask(old, new)
        dirty = bin(mask).count("1")
        self.dirty_bytes += dirty
        self.clean_bytes += WORD_BYTES - dirty
        if mask == 0:
            self.silent_stores += 1
            return

        # DLDC pattern census (Table II).
        if self.track_patterns:
            dirty_data = select_bytes(new, mask)
            match = dldc_compress_pattern(dirty_data)
            if match is not None and match[2] + 3 < 8 * len(dirty_data):
                name = PATTERN_NAMES[match[0]]
            else:
                name = "uncompressed"
            self.pattern_counts[name] += 1
            self.pattern_dirty_bytes[name] += len(dirty_data)

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------

    @property
    def clean_byte_fraction(self) -> float:
        total = self.clean_bytes + self.dirty_bytes
        return self.clean_bytes / total if total else 0.0

    @property
    def rewrite_fraction(self) -> float:
        """Fraction of stores hitting a word already written in the tx."""
        return self.rewrites_in_tx / self.total_writes if self.total_writes else 0.0

    def distance_distribution(self) -> "OrderedDict[str, float]":
        """Figure 3's categories, including First Write, as fractions."""
        out: "OrderedDict[str, float]" = OrderedDict()
        total = self.total_writes or 1
        out["First Write"] = self.first_writes / total
        for label, count in self.distance.counts().items():
            out[label] = count / total
        return out

    def pattern_fractions(self) -> "OrderedDict[str, float]":
        """Fraction of dirty (non-silent) stores compressed per pattern."""
        total = sum(self.pattern_counts.values()) or 1
        return OrderedDict(
            (name, count / total) for name, count in self.pattern_counts.items()
        )
