"""Online write-ahead-logging order checker.

The correctness backbone of every design here is CONSEQUENCE-1-compatible
WAL ordering: *the oldest undo data of a word must be persistent before
any in-place NVMM write overwrites the word's pre-transaction value*.
This monitor verifies the invariant while the simulation runs:

- it watches transactional stores (via ``System.trace``) to learn each
  in-flight transaction's (word, pre-transaction value) pairs;
- it watches the log region's appends to learn when each word's
  undo+redo entry became persistent and when transactions commit;
- it watches the memory controller's in-place NVMM data writes and
  records a violation whenever a write would change a tracked word away
  from its pre-transaction value while its undo is still volatile.

Attach with :func:`attach_wal_checker`; compose with another trace
consumer by passing it as ``forward_to``.
"""

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.common.bitops import WORD_BYTES
from repro.logging_hw.entries import EntryType


@dataclass
class WalViolation:
    addr: int
    txid: int
    pre_tx_value: int
    written_value: int

    def __str__(self) -> str:
        return (
            "WAL violation: word %#x of tx %d overwritten (%#x -> %#x) "
            "before its undo persisted" % (
                self.addr, self.txid, self.pre_tx_value, self.written_value,
            )
        )


class WalChecker:
    """Tracks in-flight words and flags premature in-place writes."""

    def __init__(self, forward_to=None) -> None:
        # (txid, addr) -> pre-transaction value, while undo not persisted.
        self._unlogged: Dict[Tuple[int, int], int] = {}
        # addr -> {txid} with any live tracking (for the write hook).
        self._by_addr: Dict[int, set] = {}
        self.violations: List[WalViolation] = []
        self.checked_writes = 0
        self._forward = forward_to

    # -- System.trace hook ------------------------------------------------

    def on_tx_store(self, tid: int, txid: int, addr: int, old: int, new: int) -> None:
        key = (txid, addr)
        if key not in self._unlogged:
            self._unlogged[key] = old
            self._by_addr.setdefault(addr, set()).add(txid)
        if self._forward is not None:
            self._forward.on_tx_store(tid, txid, addr, old, new)

    # -- LogRegion append hook ----------------------------------------------

    def on_log_append(self, record) -> None:
        if record.type is EntryType.UNDO_REDO:
            self._discard((record.txid, record.addr))
        elif record.type is EntryType.COMMIT:
            # Commit implies every undo of the tx was appended already
            # (FIFO order); drop any leftovers defensively.
            for key in [k for k in self._unlogged if k[0] == record.txid]:
                self._discard(key)

    def _discard(self, key: Tuple[int, int]) -> None:
        if self._unlogged.pop(key, None) is not None:
            txids = self._by_addr.get(key[1])
            if txids is not None:
                txids.discard(key[0])
                if not txids:
                    del self._by_addr[key[1]]

    # -- MemoryController write hook ---------------------------------------

    def on_data_write(self, line_addr: int, words) -> None:
        self.checked_writes += 1
        for i, value in enumerate(words):
            addr = line_addr + i * WORD_BYTES
            for txid in self._by_addr.get(addr, ()):
                pre = self._unlogged.get((txid, addr))
                if pre is not None and value != pre:
                    self.violations.append(
                        WalViolation(addr, txid, pre, value)
                    )

    def assert_clean(self) -> None:
        if self.violations:
            raise AssertionError(
                "%d WAL violations; first: %s"
                % (len(self.violations), self.violations[0])
            )


def attach_wal_checker(system, forward_to=None) -> WalChecker:
    """Wire a :class:`WalChecker` into a system's debug taps."""
    checker = WalChecker(forward_to=forward_to)
    system.trace = checker
    system.controller.data_write_observer = checker.on_data_write
    regions = getattr(system.log_region, "regions", None)
    if regions is None:
        regions = [system.log_region]
    for region in regions:
        region.append_observer = checker.on_log_append
    return checker
