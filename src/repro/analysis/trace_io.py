"""Transaction trace capture and replay.

The paper's motivation studies run PIN over real binaries; this module is
the equivalent interchange point for our simulator.  A trace is a JSON
Lines file of operations::

    {"op": "begin",  "tid": 0}
    {"op": "store",  "tid": 0, "addr": 4294967296, "value": 17}
    {"op": "load",   "tid": 0, "addr": 4294967296}
    {"op": "commit", "tid": 0}

Capture one by wrapping any workload in :class:`RecordingWorkload`; replay
one (e.g. converted from an external tool) with :class:`TraceWorkload`,
which behaves like any other workload and therefore runs on every design.
"""

import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.workloads.base import Workload


@dataclass(frozen=True)
class TraceOp:
    op: str                  # "begin" | "store" | "load" | "commit"
    tid: int
    addr: Optional[int] = None
    value: Optional[int] = None

    def to_json(self) -> str:
        record = {"op": self.op, "tid": self.tid}
        if self.addr is not None:
            record["addr"] = self.addr
        if self.value is not None:
            record["value"] = self.value
        return json.dumps(record, sort_keys=True)

    @staticmethod
    def from_json(line: str) -> "TraceOp":
        record = json.loads(line)
        if record.get("op") not in ("begin", "store", "load", "commit"):
            raise ValueError("unknown trace op %r" % record.get("op"))
        return TraceOp(
            op=record["op"],
            tid=int(record.get("tid", 0)),
            addr=record.get("addr"),
            value=record.get("value"),
        )


def save_trace(path: str, ops: Iterable[TraceOp]) -> int:
    count = 0
    with open(path, "w") as handle:
        for op in ops:
            handle.write(op.to_json() + "\n")
            count += 1
    return count


def load_trace(path: str) -> List[TraceOp]:
    ops: List[TraceOp] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                ops.append(TraceOp.from_json(line))
    return ops


class _RecordingCtx:
    """A TxContext proxy that logs every access it forwards."""

    def __init__(self, inner, tid: int, sink: List[TraceOp]) -> None:
        self._inner = inner
        self._tid = tid
        self._sink = sink

    def load(self, addr: int) -> int:
        self._sink.append(TraceOp("load", self._tid, addr))
        return self._inner.load(addr)

    def store(self, addr: int, value: int) -> None:
        self._sink.append(TraceOp("store", self._tid, addr, value))
        self._inner.store(addr, value)

    def load_words(self, addr: int, count: int):
        return [self.load(addr + 8 * i) for i in range(count)]

    def store_words(self, addr: int, values) -> None:
        for i, value in enumerate(values):
            self.store(addr + 8 * i, value)

    def fill(self, addr: int, count: int, value: int = 0) -> None:
        for i in range(count):
            self.store(addr + 8 * i, value)

    def compute(self, cycles: int) -> None:
        self._inner.compute(cycles)


class RecordingWorkload(Workload):
    """Wraps a workload, capturing its transactional accesses."""

    def __init__(self, inner: Workload) -> None:
        super().__init__(inner.params)
        self.inner = inner
        self.name = "record(%s)" % inner.name
        self.ops: List[TraceOp] = []

    def setup(self, system, n_threads: int) -> None:
        self.inner.setup(system, n_threads)

    def transaction(self, tid: int):
        body = self.inner.transaction(tid)
        ops = self.ops

        def recording_body(ctx):
            ops.append(TraceOp("begin", tid))
            body(_RecordingCtx(ctx, tid, ops))
            ops.append(TraceOp("commit", tid))

        return recording_body


class TraceWorkload(Workload):
    """Replays a captured trace as per-thread transaction streams.

    Addresses are used verbatim; any address below the system's NVMM base
    would not be logged, so traces should target the persistent range.
    The ``install`` map (addr -> value) seeds initial memory contents.
    """

    name = "trace-replay"

    def __init__(self, ops: List[TraceOp], install: Optional[Dict[int, int]] = None) -> None:
        super().__init__(None)
        self._install = dict(install or {})
        # Split the flat stream into per-tid transaction op lists.
        self._transactions: Dict[int, List[List[TraceOp]]] = {}
        open_tx: Dict[int, List[TraceOp]] = {}
        for op in ops:
            if op.op == "begin":
                open_tx[op.tid] = []
            elif op.op == "commit":
                self._transactions.setdefault(op.tid, []).append(
                    open_tx.pop(op.tid, [])
                )
            else:
                open_tx.setdefault(op.tid, []).append(op)
        # Unterminated transactions replay as committed tails.
        for tid, tail in open_tx.items():
            if tail:
                self._transactions.setdefault(tid, []).append(tail)
        self._cursor: Dict[int, int] = {}

    def total_transactions(self) -> int:
        return sum(len(txs) for txs in self._transactions.values())

    def setup(self, system, n_threads: int) -> None:
        self.n_threads = n_threads
        for addr, value in self._install.items():
            system.setup_store(addr, value)
        self._cursor = {tid: 0 for tid in range(n_threads)}

    def transaction(self, tid: int):
        stream = self._transactions.get(tid, [])
        index = self._cursor.get(tid, 0)
        if index >= len(stream):
            # Stream exhausted: replay wraps around (keeps the run-loop
            # contract of always having a next transaction).
            index = index % len(stream) if stream else 0
        ops = stream[index] if stream else []
        self._cursor[tid] = index + 1

        def body(ctx):
            for op in ops:
                if op.op == "store":
                    ctx.store(op.addr, op.value or 0)
                elif op.op == "load":
                    ctx.load(op.addr)

        return body
