"""Vega-Lite + CSV figure artifacts for grid sweeps.

The benchmark harness historically emitted fixed-width ``.txt`` tables
only — fine for eyeballing a terminal, useless for a browsable results
dashboard.  This module turns the same ``{workload: {design: value}}``
grids the table renderer consumes into two portable artifacts per
figure:

- ``<name>.vl.json`` — a self-contained Vega-Lite v5 grouped-bar spec
  with the data inlined (``data.values``), so any Vega-Lite viewer (or
  the online editor) renders it with zero extra files;
- ``<name>.csv`` — the same rows as plain CSV for spreadsheets/pandas.

No plotting dependency is required or allowed here: the spec is plain
JSON we assemble by hand, and :func:`validate_vega_lite` is a minimal
structural check (schema URL, inline data, mark, encodings referencing
real columns) that tests and the CI smoke job run against every emitted
spec.
"""

import csv
import io
import json
import os
import tempfile
from typing import Any, Dict, List, Mapping, NamedTuple, Optional

#: The one schema this repo emits; bump deliberately.
VEGA_LITE_SCHEMA = "https://vega.github.io/schema/vega-lite/v5.json"


class FigureError(ValueError):
    """An emitted figure spec failed structural validation."""


class FigurePaths(NamedTuple):
    vl_path: str
    csv_path: str


def grid_rows(values: Mapping[str, Mapping[str, Any]]) -> List[Dict[str, Any]]:
    """Flatten ``{workload: {design: value}}`` into long-form rows.

    Row order is workload-outer / design-inner in the mapping's own
    iteration order, so the artifact is deterministic for a given grid.
    ``None`` cells (failed/missing) are skipped — absence in the data is
    honest; a zero would be a lie.
    """
    rows: List[Dict[str, Any]] = []
    for workload, per_design in values.items():
        for design, value in per_design.items():
            if value is None:
                continue
            rows.append(
                {"workload": workload, "design": design, "value": value}
            )
    return rows


def grid_vega_spec(
    values: Mapping[str, Mapping[str, Any]],
    title: str,
    metric: str,
) -> Dict[str, Any]:
    """Grouped-bar Vega-Lite spec for one grid metric.

    x = workload (groups), xOffset = design (bars within a group),
    y = the metric value, color = design; the conventional layout for
    the paper's per-workload design comparisons (Fig. 12/13 style).
    """
    return {
        "$schema": VEGA_LITE_SCHEMA,
        "title": title,
        "data": {"values": grid_rows(values)},
        "mark": {"type": "bar"},
        "encoding": {
            "x": {"field": "workload", "type": "nominal", "title": "workload"},
            "xOffset": {"field": "design"},
            "y": {
                "field": "value",
                "type": "quantitative",
                "title": metric,
            },
            "color": {"field": "design", "type": "nominal"},
        },
    }


def csv_text(rows: List[Dict[str, Any]]) -> str:
    """Long-form rows as CSV text (header row first, ``\\n`` newlines)."""
    if not rows:
        return "workload,design,value\n"
    buffer = io.StringIO()
    writer = csv.DictWriter(
        buffer, fieldnames=list(rows[0].keys()), lineterminator="\n"
    )
    writer.writeheader()
    writer.writerows(rows)
    return buffer.getvalue()


def validate_vega_lite(spec: Dict[str, Any]) -> int:
    """Structurally validate an emitted spec; returns the data row count.

    Not a full Vega-Lite schema check (no dependency allowed) — it
    verifies the contract this repo relies on: a vega-lite ``$schema``
    URL, non-empty inline ``data.values`` of flat dicts, a mark, and
    every encoding channel's ``field`` naming a real data column.
    Raises :class:`FigureError` with a pointed message otherwise.
    """
    if not isinstance(spec, dict):
        raise FigureError("spec must be a JSON object, got %s" % type(spec))
    schema = spec.get("$schema", "")
    if "vega-lite" not in schema:
        raise FigureError("$schema %r is not a vega-lite schema URL" % schema)
    data = spec.get("data")
    if not isinstance(data, dict) or not isinstance(data.get("values"), list):
        raise FigureError("data.values must be an inline list of rows")
    rows = data["values"]
    if not rows:
        raise FigureError("data.values is empty — figure would be blank")
    columns = set()
    for index, row in enumerate(rows):
        if not isinstance(row, dict):
            raise FigureError("data.values[%d] is not an object" % index)
        columns.update(row.keys())
    if "mark" not in spec:
        raise FigureError("spec has no mark")
    encoding = spec.get("encoding")
    if not isinstance(encoding, dict) or not encoding:
        raise FigureError("spec has no encoding channels")
    for channel, definition in encoding.items():
        if not isinstance(definition, dict):
            raise FigureError("encoding.%s is not an object" % channel)
        fieldname = definition.get("field")
        if fieldname is not None and fieldname not in columns:
            raise FigureError(
                "encoding.%s references field %r which is not a data column"
                " (have: %s)" % (channel, fieldname, sorted(columns))
            )
    return len(rows)


def _write_atomic(path: str, text: str) -> None:
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(prefix=".fig-", dir=directory)
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def write_figure(
    out_dir: str,
    name: str,
    values: Mapping[str, Mapping[str, Any]],
    title: str,
    metric: str,
) -> FigurePaths:
    """Emit ``<name>.vl.json`` + ``<name>.csv`` for one grid metric.

    The spec is validated before anything touches disk, so a malformed
    figure can never land in ``benchmarks/results``.
    """
    spec = grid_vega_spec(values, title, metric)
    validate_vega_lite(spec)
    vl_path = os.path.join(out_dir, name + ".vl.json")
    csv_path = os.path.join(out_dir, name + ".csv")
    _write_atomic(vl_path, json.dumps(spec, indent=1, sort_keys=True) + "\n")
    _write_atomic(csv_path, csv_text(grid_rows(values)))
    return FigurePaths(vl_path=vl_path, csv_path=csv_path)


def discover_figures(directory: str) -> List[Dict[str, Optional[str]]]:
    """Figure artifacts in ``directory``, for the report dashboard.

    Returns ``[{"name", "vl_path", "csv_path", "title", "rows"}]``
    sorted by name; a spec that fails to parse is listed with
    ``rows=None`` rather than hidden, so the dashboard shows the damage.
    """
    if not os.path.isdir(directory):
        return []
    figures: List[Dict[str, Optional[str]]] = []
    for filename in sorted(os.listdir(directory)):
        if not filename.endswith(".vl.json"):
            continue
        name = filename[: -len(".vl.json")]
        vl_path = os.path.join(directory, filename)
        csv_path = os.path.join(directory, name + ".csv")
        title: Optional[str] = None
        rows: Optional[int] = None
        try:
            with open(vl_path) as handle:
                spec = json.load(handle)
            rows = validate_vega_lite(spec)
            raw_title = spec.get("title")
            title = raw_title if isinstance(raw_title, str) else None
        except (OSError, ValueError):
            rows = None
        figures.append({
            "name": name,
            "vl_path": vl_path,
            "csv_path": csv_path if os.path.isfile(csv_path) else None,
            "title": title,
            "rows": rows,
        })
    return figures
