"""Parallel grid engine: fan (design x workload x dataset) cells out over
a process pool, backed by the content-addressed result cache.

The paper's evaluation is an embarrassingly parallel sweep (8 designs x
12 workloads, Figs 12-16): every cell is an independent, seeded and
therefore deterministic simulation.  This module resolves each cell to an
explicit, serializable :class:`CellSpec` in the parent (so ``REPRO_SCALE``
and the :class:`ExperimentScale` are applied exactly once, before the
process boundary), checks the cache, and submits only the misses to a
``concurrent.futures.ProcessPoolExecutor``.  Results are assembled by
cell identity — never by completion order — so a parallel run is
bit-identical to a sequential one; ``jobs=1`` (or a single cell) runs
inline in-process for the same reason, which also keeps the engine usable
where process pools are unavailable.

Per-cell wall time and cache hit/miss counters land in the returned
:class:`GridReport`, making cache speedup and pool scaling observable.
"""

import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.core.system import RunResult
from repro.experiments.cache import ResultCache, cell_key_fields
from repro.experiments.serialize import (
    config_from_dict,
    config_to_dict,
    params_from_dict,
    params_to_dict,
    run_result_to_dict,
    stable_hash,
)
from repro.workloads.base import DatasetSize, WorkloadParams


def default_jobs() -> int:
    return os.cpu_count() or 1


@dataclass(frozen=True)
class CellSpec:
    """One fully-resolved grid cell: everything a worker needs, as data.

    Transaction/thread counts are resolved before construction, so the
    spec (and hence the cache key) is independent of the environment the
    worker process happens to see.
    """

    design: str
    workload: str
    dataset: DatasetSize
    config_dict: Dict[str, Any]
    params_dict: Dict[str, Any]
    n_transactions: int
    n_threads: int
    repro_scale: float
    # Replay cells (see repro.replay): the trace container to drive the
    # cell from instead of re-running the workload, plus its content
    # digest, which joins the cache key so an edited trace misses.
    replay_trace_path: Optional[str] = None
    trace_digest: Optional[str] = None

    def key_fields(self) -> Dict[str, Any]:
        return cell_key_fields(
            self.design,
            self.workload,
            self.dataset.name,
            self.config_dict,
            self.params_dict,
            self.n_transactions,
            self.n_threads,
            self.repro_scale,
            trace_digest=self.trace_digest,
        )

    def key(self) -> str:
        return stable_hash(self.key_fields())


def resolve_cell(
    design: str,
    workload: str,
    dataset: DatasetSize = DatasetSize.SMALL,
    scale=None,
    config=None,
    params=None,
    n_transactions: Optional[int] = None,
    n_threads: Optional[int] = None,
) -> CellSpec:
    """Resolve run_design-style arguments into an explicit CellSpec.

    Explicit ``n_transactions``/``n_threads`` must be positive: an
    explicit zero is a caller error, not a request for the scale default
    (the ``or``-coercion family of bugs — see ``System.run``'s identical
    ``n_threads=0`` fix).
    """
    from repro.experiments.runner import (
        ExperimentScale,
        MACRO_NAMES,
        _scale,
        default_config,
        resolve_params,
    )

    if n_transactions is not None and n_transactions <= 0:
        raise ValueError(
            "n_transactions must be positive, got %r (omit it or pass None"
            " for the scale default)" % (n_transactions,)
        )
    if n_threads is not None and n_threads <= 0:
        raise ValueError(
            "n_threads must be positive, got %r (omit it or pass None for"
            " the scale default)" % (n_threads,)
        )
    scale = scale or ExperimentScale()
    config = config if config is not None else default_config()
    params = resolve_params(params, dataset)
    macro = workload in MACRO_NAMES
    return CellSpec(
        design=design,
        workload=workload,
        dataset=dataset,
        config_dict=config_to_dict(config),
        params_dict=params_to_dict(params),
        n_transactions=(
            n_transactions if n_transactions is not None
            else scale.transactions(macro, dataset)
        ),
        n_threads=n_threads if n_threads is not None else scale.threads(macro),
        repro_scale=_scale(),
    )


def spec_to_dict(spec: CellSpec) -> Dict[str, Any]:
    """Serialize a CellSpec for shard manifests (JSON-safe, lossless)."""
    return {
        "design": spec.design,
        "workload": spec.workload,
        "dataset": spec.dataset.name,
        "config_dict": spec.config_dict,
        "params_dict": spec.params_dict,
        "n_transactions": spec.n_transactions,
        "n_threads": spec.n_threads,
        "repro_scale": spec.repro_scale,
        "replay_trace_path": spec.replay_trace_path,
        "trace_digest": spec.trace_digest,
    }


def spec_from_dict(data: Dict[str, Any]) -> CellSpec:
    """Rebuild a CellSpec from :func:`spec_to_dict` output."""
    return CellSpec(
        design=data["design"],
        workload=data["workload"],
        dataset=DatasetSize[data["dataset"]],
        config_dict=data["config_dict"],
        params_dict=data["params_dict"],
        n_transactions=int(data["n_transactions"]),
        n_threads=int(data["n_threads"]),
        repro_scale=float(data["repro_scale"]),
        replay_trace_path=data.get("replay_trace_path"),
        trace_digest=data.get("trace_digest"),
    )


def resolve_replay_cell(
    design: str,
    trace_path: str,
    config=None,
) -> CellSpec:
    """Resolve a replay cell: ``design`` scoring a recorded trace.

    Workload identity, thread count and transaction count come from the
    trace's own metadata; the trace digest joins the cache key, so
    replaying an edited trace can never replay a stale result.
    """
    from repro.experiments.runner import _scale, default_config
    from repro.replay import load_trace

    trace = load_trace(trace_path)
    meta = trace.meta
    provenance = meta.get("provenance", {})
    config = config if config is not None else default_config()
    return CellSpec(
        design=design,
        workload=provenance.get("workload", "trace"),
        dataset=DatasetSize[provenance.get("dataset", "SMALL")],
        config_dict=config_to_dict(config),
        params_dict={},
        n_transactions=trace.n_transactions,
        n_threads=trace.n_threads,
        repro_scale=_scale(),
        replay_trace_path=os.path.abspath(trace_path),
        trace_digest=trace.digest(),
    )


def _run_replay_payload(payload: Dict[str, Any], started: float) -> Dict[str, Any]:
    """Replay-cell worker body: drive the design from the recorded trace."""
    from repro.core.designs import make_system
    from repro.experiments.serialize import config_from_dict
    from repro.replay import load_trace, replay_trace

    system = make_system(
        payload["design"], config_from_dict(payload["config_dict"])
    )
    result = replay_trace(system, load_trace(payload["replay_trace_path"]))
    return {
        "result": run_result_to_dict(result),
        "seconds": time.perf_counter() - started,
        "trace_path": None,
    }


def _run_cell_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry point: simulate one cell from its serialized spec.

    Must stay a module-level function so it pickles under every
    multiprocessing start method; returns plain dicts for the same
    reason.  Wall time is measured here so the report reflects the
    simulation itself, not pool queueing.

    When the payload carries a ``trace_path`` the cell runs with tracing
    enabled and exports a Chrome trace there.  Tracing is inert
    (test-enforced), so the result — and hence the cache entry — is
    bit-identical either way and the cache key needs no trace field.
    """
    from repro.experiments.runner import run_design_traced

    from repro.experiments.megagrid import apply_injected_fault

    started = time.perf_counter()
    apply_injected_fault(payload)
    if payload.get("replay_trace_path") is not None:
        return _run_replay_payload(payload, started)
    trace_path = payload.get("trace_path")
    trace = None
    if trace_path is not None:
        from repro.trace import TraceConfig

        trace = TraceConfig(enabled=True)
    result, bus = run_design_traced(
        payload["design"],
        payload["workload"],
        DatasetSize[payload["dataset"]],
        config=config_from_dict(payload["config_dict"]),
        params=params_from_dict(payload["params_dict"]),
        n_transactions=payload["n_transactions"],
        n_threads=payload["n_threads"],
        trace=trace,
    )
    if bus is not None and trace_path is not None:
        from repro.trace import write_chrome_trace

        write_chrome_trace(
            trace_path,
            bus.events,
            design=payload["design"],
            workload=payload["workload"],
            dropped=bus.dropped,
        )
    return {
        "result": run_result_to_dict(result),
        "seconds": time.perf_counter() - started,
        "trace_path": trace_path,
    }


def _payload(spec: CellSpec, trace_path: Optional[str] = None) -> Dict[str, Any]:
    return {
        "design": spec.design,
        "workload": spec.workload,
        "dataset": spec.dataset.name,
        "config_dict": spec.config_dict,
        "params_dict": spec.params_dict,
        "n_transactions": spec.n_transactions,
        "n_threads": spec.n_threads,
        "trace_path": trace_path,
        "replay_trace_path": spec.replay_trace_path,
    }


def _trace_path(trace_dir: Optional[str], spec: CellSpec) -> Optional[str]:
    """Deterministic artifact path for one cell's Chrome trace."""
    if trace_dir is None:
        return None
    return os.path.join(trace_dir, "%s.trace.json" % spec.key())


@dataclass
class CellReport:
    """Where one cell's result came from and what it cost.

    ``trace_path`` is the cell's Chrome-trace artifact when trace capture
    was requested and the file exists (a cached cell keeps its path only
    if the artifact is still on disk), else None.

    ``deduped`` marks an index that repeated an earlier spec in the same
    call: it was served from that cell's single simulation (or cache
    entry), never re-simulated, and reports as a hit.
    """

    design: str
    workload: str
    dataset: str
    cached: bool
    seconds: float
    key: str
    trace_path: Optional[str] = None
    deduped: bool = False


@dataclass
class GridReport:
    """Observability for one engine invocation."""

    cells: List[CellReport] = field(default_factory=list)
    jobs: int = 1
    wall_seconds: float = 0.0

    @property
    def hits(self) -> int:
        return sum(1 for c in self.cells if c.cached)

    @property
    def misses(self) -> int:
        return sum(1 for c in self.cells if not c.cached)

    @property
    def simulated_cells(self) -> int:
        return self.misses

    @property
    def simulated_seconds(self) -> float:
        return sum(c.seconds for c in self.cells if not c.cached)

    def summary(self) -> str:
        return (
            "grid: %d cells, %d simulated, %d cache hits, jobs=%d, "
            "%.2fs wall (%.2fs simulated)"
            % (
                len(self.cells),
                self.simulated_cells,
                self.hits,
                self.jobs,
                self.wall_seconds,
                self.simulated_seconds,
            )
        )


@dataclass
class GridOutcome:
    """Results keyed like run_grid, plus the execution report."""

    results: Dict[str, Dict[str, RunResult]]
    report: GridReport


def run_cells(
    specs: List[CellSpec],
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    trace_dir: Optional[str] = None,
) -> Tuple[List[RunResult], GridReport]:
    """Execute cells (cache-first, then pool) preserving input order.

    Delegates to the mega-grid engine (:mod:`repro.experiments.megagrid`)
    in fail-fast mode: every returned result aligns with its input spec,
    duplicate specs are simulated exactly once (later indices fan out
    from the first — see ``CellReport.deduped``), completed cells stream
    into the cache as they finish, and a failing cell raises instead of
    silently shifting later results onto the wrong specs.

    ``trace_dir`` opts into trace capture: every simulated cell also
    writes ``<trace_dir>/<key>.trace.json``.  Cached cells are not
    re-simulated — their report records the artifact path only if a
    previous traced run left it on disk.
    """
    from repro.experiments.megagrid import GridAssemblyError, run_megagrid

    outcome = run_megagrid(
        list(specs),
        jobs=jobs,
        cache=cache,
        trace_dir=trace_dir,
        retries=0,
        timeout_s=None,
        fail_soft=False,
    )
    missing = [i for i, r in enumerate(outcome.results) if r is None]
    if missing:
        # Unreachable in fail-fast mode (the engine raises first); kept
        # so a dropped cell can never corrupt positional assembly.
        raise GridAssemblyError(
            "run_cells: %d cell(s) absent at indices %s"
            % (len(missing), missing)
        )
    return list(outcome.results), outcome.report


def run_grid_parallel(
    designs: Iterable[str],
    workloads: Iterable[str],
    dataset: DatasetSize = DatasetSize.SMALL,
    scale=None,
    config=None,
    params: Optional[WorkloadParams] = None,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    trace_dir: Optional[str] = None,
) -> GridOutcome:
    """Parallel, cached drop-in for :func:`repro.experiments.runner.run_grid`.

    Returns the same ``{workload: {design: RunResult}}`` mapping (wrapped
    in a :class:`GridOutcome` next to its report) with bit-identical
    stats regardless of ``jobs``.  ``trace_dir`` opts into per-cell trace
    artifacts (see :func:`run_cells`).
    """
    designs = list(designs)
    workloads = list(workloads)
    specs = [
        resolve_cell(design, workload, dataset, scale, config, params)
        for workload in workloads
        for design in designs
    ]
    flat, report = run_cells(specs, jobs=jobs, cache=cache, trace_dir=trace_dir)
    results: Dict[str, Dict[str, RunResult]] = {}
    index = 0
    for workload in workloads:
        row: Dict[str, RunResult] = {}
        for design in designs:
            row[design] = flat[index]
            index += 1
        results[workload] = row
    return GridOutcome(results=results, report=report)
