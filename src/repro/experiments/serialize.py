"""Stable serialization for experiment inputs and outputs.

The parallel grid engine (:mod:`repro.experiments.parallel`) ships cells
to worker processes and keys an on-disk result cache by their inputs, so
:class:`SystemConfig`, :class:`WorkloadParams` and :class:`RunResult` all
need a round-trippable dict form plus a *canonical* JSON encoding whose
bytes are stable across processes and sessions (sorted keys, no
whitespace, enum names instead of values).  Hashes of that encoding are
the cache keys — see :func:`canonical_json` and :func:`stable_hash`.
"""

import hashlib
import json
from dataclasses import asdict, fields
from typing import Any, Dict

from repro.common.config import (
    CacheConfig,
    CacheLevelConfig,
    CoreConfig,
    EncodingConfig,
    LoggingConfig,
    NVMConfig,
    SystemConfig,
)
from repro.core.system import RunResult
from repro.workloads.base import DatasetSize, WorkloadParams


def canonical_json(obj: Any) -> str:
    """Deterministic JSON: sorted keys, minimal separators.

    Two equal dicts always produce byte-identical strings, which makes
    the string's hash usable as a content address.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def stable_hash(obj: Any) -> str:
    """SHA-256 hex digest of ``obj``'s canonical JSON form."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# SystemConfig
# ---------------------------------------------------------------------------


def config_to_dict(config: SystemConfig) -> Dict[str, Any]:
    """Nested plain-dict form of a :class:`SystemConfig` (JSON-safe)."""
    return asdict(config)


#: Encoding-config fields that cannot change any run result (the codec
#: memoization layer is result-inert by construction, pinned by
#: tests/test_codec_memo.py).  They are stripped from grid cache keys so
#: toggling them neither invalidates cached results nor forks the key
#: space.
RESULT_INERT_ENCODING_FIELDS = ("codec_memo", "codec_memo_entries")


def strip_result_inert_encoding(config_dict: Dict[str, Any]) -> Dict[str, Any]:
    """``config_dict`` with the result-inert encoding fields removed.

    The single home of the stripping logic: cache keys must go through
    this, while worker processes get the full :func:`config_to_dict` so
    the knobs round-trip.  Returns the input unchanged (same object) when
    no knob is present, so pre-knob dicts pass through untouched.
    """
    encoding = config_dict.get("encoding")
    if not encoding or not any(
        name in encoding for name in RESULT_INERT_ENCODING_FIELDS
    ):
        return config_dict
    encoding = {
        k: v for k, v in encoding.items() if k not in RESULT_INERT_ENCODING_FIELDS
    }
    return dict(config_dict, encoding=encoding)


def config_from_dict(data: Dict[str, Any]) -> SystemConfig:
    caches = data["caches"]
    return SystemConfig(
        cores=CoreConfig(**data["cores"]),
        caches=CacheConfig(
            l1=CacheLevelConfig(**caches["l1"]),
            l2=CacheLevelConfig(**caches["l2"]),
            l3=CacheLevelConfig(**caches["l3"]),
        ),
        nvm=NVMConfig(**data["nvm"]),
        logging=LoggingConfig(**data["logging"]),
        encoding=EncodingConfig(**data["encoding"]),
        nvmm_base=data["nvmm_base"],
        seed=data["seed"],
    )


# ---------------------------------------------------------------------------
# WorkloadParams
# ---------------------------------------------------------------------------


def params_to_dict(params: WorkloadParams) -> Dict[str, Any]:
    """Dict form of :class:`WorkloadParams`; the dataset enum becomes its
    name so the encoding stays stable if the enum's value ever changes."""
    out = {f.name: getattr(params, f.name) for f in fields(params)}
    out["dataset"] = params.dataset.name
    return out


def params_from_dict(data: Dict[str, Any]) -> WorkloadParams:
    data = dict(data)
    data["dataset"] = DatasetSize[data["dataset"]]
    return WorkloadParams(**data)


# ---------------------------------------------------------------------------
# RunResult
# ---------------------------------------------------------------------------


def run_result_to_dict(result: RunResult) -> Dict[str, Any]:
    return {
        "transactions": result.transactions,
        "elapsed_ns": result.elapsed_ns,
        "stats": dict(result.stats),
    }


def run_result_from_dict(data: Dict[str, Any]) -> RunResult:
    return RunResult(
        transactions=int(data["transactions"]),
        elapsed_ns=float(data["elapsed_ns"]),
        stats={str(k): v for k, v in data["stats"].items()},
    )
