"""Grid runner for design x workload sweeps.

The paper runs 100 K transactions per configuration on a cycle-accurate
simulator; this Python reproduction defaults to a few hundred per cell —
the normalized ratios it reports stabilise well before that (there is a
convergence test in ``tests/test_experiments.py``).  Set the environment
variable ``REPRO_SCALE`` (float, default 1.0) to scale every transaction
count up or down.

``run_grid`` accepts ``jobs``/``cache`` and delegates to the parallel
engine (:mod:`repro.experiments.parallel`) when either is set; results
are bit-identical either way because every cell is seeded.
"""

import os
import warnings
from dataclasses import dataclass, replace
from typing import Dict, Iterable, Optional

from repro.common.config import LoggingConfig, SystemConfig
from repro.common.errors import ConfigError
from repro.core.designs import make_system
from repro.core.system import RunResult
from repro.workloads.base import DatasetSize, WorkloadParams, make_workload


def _scale() -> float:
    raw = os.environ.get("REPRO_SCALE", "1.0")
    try:
        scale = float(raw)
    except ValueError:
        warnings.warn(
            "ignoring malformed REPRO_SCALE=%r (expected a float)" % raw,
            RuntimeWarning,
            stacklevel=2,
        )
        return 1.0
    if scale <= 0:
        raise ConfigError("REPRO_SCALE must be positive, got %r" % raw)
    return scale


@dataclass(frozen=True)
class ExperimentScale:
    """Transaction counts and thread counts for one sweep."""

    micro_transactions: int = 240
    macro_transactions: int = 120
    large_factor: float = 0.1    # large-dataset cells run fewer txs
    micro_threads: int = 8       # paper: 8
    macro_threads: int = 4       # paper: 4

    def transactions(self, macro: bool, dataset: DatasetSize) -> int:
        base = self.macro_transactions if macro else self.micro_transactions
        if dataset is DatasetSize.LARGE:
            base = max(int(base * self.large_factor), 20)
        return max(int(base * _scale()), 10)

    def threads(self, macro: bool) -> int:
        return self.macro_threads if macro else self.micro_threads


MACRO_NAMES = {"echo", "ycsb", "tpcc"}

DEFAULT_PARAMS = WorkloadParams(initial_items=256, key_space=1024)


def default_config() -> SystemConfig:
    """Experiment base config: Table III with a sweep-friendly log region."""
    return SystemConfig(logging=LoggingConfig(log_region_bytes=8 * 1024 * 1024))


def resolve_params(
    params: Optional[WorkloadParams], dataset: DatasetSize
) -> WorkloadParams:
    """The exact params a cell runs with: defaults + the requested dataset.

    Uses :func:`dataclasses.replace` so every ``WorkloadParams`` field —
    including ones added after this code was written — survives.
    """
    return replace(params or DEFAULT_PARAMS, dataset=dataset)


def run_design(
    design: str,
    workload_name: str,
    dataset: DatasetSize = DatasetSize.SMALL,
    scale: Optional[ExperimentScale] = None,
    config: Optional[SystemConfig] = None,
    params: Optional[WorkloadParams] = None,
    n_threads: Optional[int] = None,
    n_transactions: Optional[int] = None,
    trace=None,
) -> RunResult:
    """Run one (design, workload, dataset) cell.

    ``trace`` takes a :class:`repro.trace.TraceConfig`; tracing is inert
    (test-enforced), so traced and traceless runs return identical
    results.  Use :func:`run_design_traced` to get the bus back.
    """
    return run_design_traced(
        design, workload_name, dataset, scale, config, params,
        n_threads, n_transactions, trace,
    )[0]


def run_design_traced(
    design: str,
    workload_name: str,
    dataset: DatasetSize = DatasetSize.SMALL,
    scale: Optional[ExperimentScale] = None,
    config: Optional[SystemConfig] = None,
    params: Optional[WorkloadParams] = None,
    n_threads: Optional[int] = None,
    n_transactions: Optional[int] = None,
    trace=None,
):
    """Like :func:`run_design` but returns ``(RunResult, bus_or_None)``."""
    result, system = run_design_system(
        design, workload_name, dataset, scale, config, params,
        n_threads, n_transactions, trace,
    )
    return result, system.tracer


def run_design_system(
    design: str,
    workload_name: str,
    dataset: DatasetSize = DatasetSize.SMALL,
    scale: Optional[ExperimentScale] = None,
    config: Optional[SystemConfig] = None,
    params: Optional[WorkloadParams] = None,
    n_threads: Optional[int] = None,
    n_transactions: Optional[int] = None,
    trace=None,
):
    """Run one cell and return ``(RunResult, System)``.

    The system gives callers the post-run machine state the result alone
    cannot: the trace bus, and host-side diagnostics such as the codec
    memo counters (``system.controller.nvm.memo_stats()``).
    """
    scale = scale or ExperimentScale()
    config = config if config is not None else default_config()
    params = resolve_params(params, dataset)
    macro = workload_name in MACRO_NAMES
    system = make_system(design, config, trace=trace)
    workload = make_workload(workload_name, params)
    result = system.run(
        workload,
        n_transactions or scale.transactions(macro, dataset),
        n_threads or scale.threads(macro),
    )
    return result, system


def run_grid(
    designs: Iterable[str],
    workloads: Iterable[str],
    dataset: DatasetSize = DatasetSize.SMALL,
    scale: Optional[ExperimentScale] = None,
    config: Optional[SystemConfig] = None,
    params: Optional[WorkloadParams] = None,
    jobs: Optional[int] = None,
    cache=None,
) -> Dict[str, Dict[str, RunResult]]:
    """Run the full grid; returns {workload: {design: RunResult}}.

    ``jobs`` > 1 fans the cells out over a process pool and ``cache`` (a
    :class:`repro.experiments.cache.ResultCache`) reuses previous results;
    both paths produce bit-identical stats.
    """
    if jobs is not None and jobs != 1 or cache is not None:
        from repro.experiments.parallel import run_grid_parallel

        return run_grid_parallel(
            designs, workloads, dataset, scale, config, params,
            jobs=jobs, cache=cache,
        ).results
    results: Dict[str, Dict[str, RunResult]] = {}
    for workload in workloads:
        row: Dict[str, RunResult] = {}
        for design in designs:
            row[design] = run_design(
                design, workload, dataset, scale, config, params
            )
        results[workload] = row
    return results
