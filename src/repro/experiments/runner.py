"""Grid runner for design x workload sweeps.

The paper runs 100 K transactions per configuration on a cycle-accurate
simulator; this Python reproduction defaults to a few hundred per cell —
the normalized ratios it reports stabilise well before that (there is a
convergence test in ``tests/test_experiments.py``).  Set the environment
variable ``REPRO_SCALE`` (float, default 1.0) to scale every transaction
count up or down.
"""

import os
from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.common.config import LoggingConfig, SystemConfig
from repro.core.designs import make_system
from repro.core.system import RunResult
from repro.workloads.base import DatasetSize, WorkloadParams, make_workload


def _scale() -> float:
    try:
        return float(os.environ.get("REPRO_SCALE", "1.0"))
    except ValueError:
        return 1.0


@dataclass(frozen=True)
class ExperimentScale:
    """Transaction counts and thread counts for one sweep."""

    micro_transactions: int = 240
    macro_transactions: int = 120
    large_factor: float = 0.1    # large-dataset cells run fewer txs
    micro_threads: int = 8       # paper: 8
    macro_threads: int = 4       # paper: 4

    def transactions(self, macro: bool, dataset: DatasetSize) -> int:
        base = self.macro_transactions if macro else self.micro_transactions
        if dataset is DatasetSize.LARGE:
            base = max(int(base * self.large_factor), 20)
        return max(int(base * _scale()), 10)

    def threads(self, macro: bool) -> int:
        return self.macro_threads if macro else self.micro_threads


MACRO_NAMES = {"echo", "ycsb", "tpcc"}

DEFAULT_PARAMS = WorkloadParams(initial_items=256, key_space=1024)


def default_config() -> SystemConfig:
    """Experiment base config: Table III with a sweep-friendly log region."""
    return SystemConfig(logging=LoggingConfig(log_region_bytes=8 * 1024 * 1024))


def run_design(
    design: str,
    workload_name: str,
    dataset: DatasetSize = DatasetSize.SMALL,
    scale: Optional[ExperimentScale] = None,
    config: Optional[SystemConfig] = None,
    params: Optional[WorkloadParams] = None,
    n_threads: Optional[int] = None,
    n_transactions: Optional[int] = None,
) -> RunResult:
    """Run one (design, workload, dataset) cell."""
    scale = scale or ExperimentScale()
    config = config if config is not None else default_config()
    params = params or DEFAULT_PARAMS
    params = WorkloadParams(
        dataset=dataset,
        initial_items=params.initial_items,
        key_space=params.key_space,
        seed=params.seed,
        zero_fraction=params.zero_fraction,
        small_fraction=params.small_fraction,
    )
    macro = workload_name in MACRO_NAMES
    system = make_system(design, config)
    workload = make_workload(workload_name, params)
    return system.run(
        workload,
        n_transactions or scale.transactions(macro, dataset),
        n_threads or scale.threads(macro),
    )


def run_grid(
    designs: Iterable[str],
    workloads: Iterable[str],
    dataset: DatasetSize = DatasetSize.SMALL,
    scale: Optional[ExperimentScale] = None,
    config: Optional[SystemConfig] = None,
    params: Optional[WorkloadParams] = None,
) -> Dict[str, Dict[str, RunResult]]:
    """Run the full grid; returns {workload: {design: RunResult}}."""
    results: Dict[str, Dict[str, RunResult]] = {}
    for workload in workloads:
        row: Dict[str, RunResult] = {}
        for design in designs:
            row[design] = run_design(
                design, workload, dataset, scale, config, params
            )
        results[workload] = row
    return results
