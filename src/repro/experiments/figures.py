"""One function per paper table/figure (see DESIGN.md's experiment index).

Each function returns structured data and renders the paper-shaped table
via :func:`repro.analysis.report.format_table`.  Absolute values differ
from the paper (different substrate); the shapes — who wins, by roughly
what factor — are what EXPERIMENTS.md tracks.
"""

from collections import OrderedDict
from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.clean_bytes import clean_byte_percentage
from repro.analysis.overhead import morphable_logging_overhead, slde_overhead
from repro.analysis.patterns import dldc_pattern_census
from repro.analysis.report import format_table
from repro.analysis.write_distance import write_distance_distribution
from repro.common.config import SystemConfig
from repro.common.stats import geometric_mean
from repro.core.designs import DESIGN_NAMES, EXTENSION_DESIGN_NAMES, make_system
from repro.experiments.runner import (
    DEFAULT_PARAMS,
    ExperimentScale,
    default_config,
    run_design,
    run_grid,
)
from repro.workloads.base import DatasetSize, WorkloadParams, make_workload

MICRO = ("btree", "hash", "queue", "rbtree", "sdg", "sps")
MACRO_CELLS = (
    ("echo", DatasetSize.SMALL, "Echo-Small"),
    ("echo", DatasetSize.LARGE, "Echo-Large"),
    ("ycsb", DatasetSize.SMALL, "YCSB-Small"),
    ("ycsb", DatasetSize.LARGE, "YCSB-Large"),
    ("tpcc", DatasetSize.SMALL, "TPCC"),
)
# The paper's Figure 3/5 application list (WHISPER): echo, ycsb, tpcc,
# vacation, ctree, hashmap, redis, memcached — all implemented.
MOTIVATION_WORKLOADS = (
    "echo", "ycsb", "tpcc", "vacation", "ctree", "hash", "redis", "memcached",
)

BASELINE = "FWB-CRADE"

#: The paper's six designs plus the comparative-testbed extensions
#: (ROADMAP item 3) — the design axis of the fig12x/fig13x variants.
#: Kept separate from DESIGN_NAMES so the paper-shaped tables and their
#: golden outputs are untouched.
COMPARISON_DESIGN_NAMES = DESIGN_NAMES + EXTENSION_DESIGN_NAMES


def _grid_metric(grid, metric) -> "OrderedDict[str, OrderedDict[str, float]]":
    out: "OrderedDict[str, OrderedDict[str, float]]" = OrderedDict()
    for workload, row in grid.items():
        out[workload] = OrderedDict(
            (design, metric(result)) for design, result in row.items()
        )
    return out


def _normalized_rows(values, baseline=BASELINE) -> Tuple[List[str], List[List]]:
    designs = list(next(iter(values.values())).keys())
    headers = ["workload"] + designs
    rows: List[List] = []
    per_design: Dict[str, List[float]] = {d: [] for d in designs}
    for workload, row in values.items():
        base = row[baseline]
        normalized = [row[d] / base if base else float("nan") for d in designs]
        rows.append([workload] + normalized)
        for d, v in zip(designs, normalized):
            per_design[d].append(v)
    rows.append(
        ["Gmean"] + [geometric_mean(per_design[d]) for d in designs]
    )
    return headers, rows


# ---------------------------------------------------------------------------
# Motivation figures
# ---------------------------------------------------------------------------


def fig3_write_distance(
    scale: Optional[ExperimentScale] = None,
    workloads: Sequence[str] = MOTIVATION_WORKLOADS,
) -> Dict[str, "OrderedDict[str, float]"]:
    """Figure 3: write-distance distribution per workload."""
    scale = scale or ExperimentScale()
    out: "OrderedDict[str, OrderedDict[str, float]]" = OrderedDict()
    for name in workloads:
        out[name] = write_distance_distribution(
            name,
            n_transactions=scale.transactions(True, DatasetSize.SMALL),
            n_threads=scale.threads(True),
            params=DEFAULT_PARAMS,
            config=default_config(),
        )
    return out


def fig3_table(data=None) -> str:
    data = data or fig3_write_distance()
    buckets = list(next(iter(data.values())).keys())
    rows = [[w] + [100 * frac for frac in dist.values()] for w, dist in data.items()]
    return format_table(
        ["workload"] + buckets,
        rows,
        title="Figure 3: write distance distribution (% of writes)",
        float_format="%.1f",
    )


def fig5_clean_bytes(
    scale: Optional[ExperimentScale] = None,
    workloads: Sequence[str] = MOTIVATION_WORKLOADS,
) -> "OrderedDict[str, float]":
    """Figure 5: % clean bytes among data updated by transactions."""
    scale = scale or ExperimentScale()
    out: "OrderedDict[str, float]" = OrderedDict()
    for name in workloads:
        out[name] = clean_byte_percentage(
            name,
            n_transactions=scale.transactions(True, DatasetSize.SMALL),
            n_threads=scale.threads(True),
            params=DEFAULT_PARAMS,
            config=default_config(),
        )
    return out


def fig5_table(data=None) -> str:
    data = data or fig5_clean_bytes()
    rows = [[w, pct] for w, pct in data.items()]
    rows.append(["Average", sum(data.values()) / len(data)])
    return format_table(
        ["workload", "clean bytes (%)"],
        rows,
        title="Figure 5: percentage of clean bytes among transactional updates",
        float_format="%.1f",
    )


def table2_patterns(
    scale: Optional[ExperimentScale] = None,
    workloads: Sequence[str] = MOTIVATION_WORKLOADS,
) -> "OrderedDict[str, float]":
    """Table II: fraction of dirty log data per DLDC pattern."""
    scale = scale or ExperimentScale()
    return dldc_pattern_census(
        workloads,
        n_transactions=max(scale.transactions(True, DatasetSize.SMALL) // 2, 50),
        n_threads=scale.threads(True),
        params=DEFAULT_PARAMS,
        config=default_config(),
    )


def table2_table(data=None) -> str:
    data = data or table2_patterns()
    rows = [[name, 100 * frac] for name, frac in data.items()]
    compressible = 100 * sum(f for n, f in data.items() if n != "uncompressed")
    rows.append(["cumulative compressible", compressible])
    return format_table(
        ["pattern", "% of dirty log data"],
        rows,
        title="Table II: DLDC pattern census",
        float_format="%.1f",
    )


def table1_overheads(config: Optional[SystemConfig] = None) -> Dict[str, float]:
    """Table I plus the section IV-C SLDE overheads."""
    config = config or default_config().with_changes()
    dp_config = replace(config, logging=replace(config.logging, delay_persistence=True))
    hw = morphable_logging_overhead(dp_config)
    slde = slde_overhead(config)
    out = {
        "log_registers_bytes": hw.log_registers_bytes,
        "l1_extension_bits_per_line": hw.l1_extension_bits_per_line,
        "undo_redo_buffer_bytes": hw.undo_redo_buffer_bytes,
        "redo_buffer_bytes": hw.redo_buffer_bytes,
        "ulog_counters_bytes": hw.ulog_counters_bytes,
    }
    out.update(slde)
    return out


# ---------------------------------------------------------------------------
# Main evaluation figures
# ---------------------------------------------------------------------------


def fig12_micro_throughput(
    dataset: DatasetSize = DatasetSize.SMALL,
    scale: Optional[ExperimentScale] = None,
    designs: Sequence[str] = DESIGN_NAMES,
    jobs: Optional[int] = None,
    cache=None,
):
    """Figure 12: micro-benchmark throughput, normalized to FWB-CRADE."""
    grid = run_grid(designs, MICRO, dataset, scale, jobs=jobs, cache=cache)
    values = _grid_metric(grid, lambda r: r.throughput_tx_per_s)
    return grid, values


def fig13_write_traffic(
    dataset: DatasetSize = DatasetSize.SMALL,
    scale: Optional[ExperimentScale] = None,
    designs: Sequence[str] = DESIGN_NAMES,
    grid=None,
    jobs: Optional[int] = None,
    cache=None,
):
    """Figure 13: NVMM write traffic, normalized to FWB-CRADE."""
    if grid is None:
        grid = run_grid(designs, MICRO, dataset, scale, jobs=jobs, cache=cache)
    values = _grid_metric(grid, lambda r: float(r.nvmm_writes))
    return grid, values


def table5_write_energy(
    scale: Optional[ExperimentScale] = None,
    designs: Sequence[str] = DESIGN_NAMES,
    grids=None,
    jobs: Optional[int] = None,
    cache=None,
):
    """Table V: NVMM write-energy reduction vs FWB-CRADE, both sizes."""
    out: "OrderedDict[str, OrderedDict[str, float]]" = OrderedDict()
    for dataset, label in ((DatasetSize.SMALL, "Small"), (DatasetSize.LARGE, "Large")):
        grid = None if grids is None else grids.get(label)
        if grid is None:
            grid = run_grid(designs, MICRO, dataset, scale, jobs=jobs, cache=cache)
        energy = _grid_metric(grid, lambda r: r.nvmm_write_energy_pj)
        reductions: "OrderedDict[str, float]" = OrderedDict()
        for design in designs:
            ratios = [row[design] / row[BASELINE] for row in energy.values()]
            reductions[design] = 100.0 * (1.0 - geometric_mean(ratios))
        out[label] = reductions
    return out


def table6_log_bits(
    scale: Optional[ExperimentScale] = None,
    designs: Sequence[str] = DESIGN_NAMES,
    jobs: Optional[int] = None,
    cache=None,
):
    """Table VI: log-bit reduction with expansion coding disabled."""
    base = default_config()
    config = base.with_changes(
        encoding=replace(base.encoding, expansion_enabled=False)
    )
    out: "OrderedDict[str, OrderedDict[str, float]]" = OrderedDict()
    for dataset, label in ((DatasetSize.SMALL, "Small"), (DatasetSize.LARGE, "Large")):
        grid = run_grid(
            designs, MICRO, dataset, scale, config=config, jobs=jobs, cache=cache
        )
        bits = _grid_metric(grid, lambda r: float(r.log_bits))
        reductions: "OrderedDict[str, float]" = OrderedDict()
        for design in designs:
            ratios = [row[design] / row[BASELINE] for row in bits.values()]
            reductions[design] = 100.0 * (1.0 - geometric_mean(ratios))
        out[label] = reductions
    return out


def fig14_macro_throughput(
    scale: Optional[ExperimentScale] = None,
    designs: Sequence[str] = DESIGN_NAMES,
    jobs: Optional[int] = None,
    cache=None,
):
    """Figure 14: macro-benchmark throughput, normalized to FWB-CRADE."""
    from repro.experiments.parallel import resolve_cell, run_cells

    scale = scale or ExperimentScale()
    specs = [
        resolve_cell(design, workload, dataset, scale)
        for workload, dataset, _label in MACRO_CELLS
        for design in designs
    ]
    flat, _report = run_cells(specs, jobs=jobs or 1, cache=cache)
    values: "OrderedDict[str, OrderedDict[str, float]]" = OrderedDict()
    index = 0
    for _workload, _dataset, label in MACRO_CELLS:
        row: "OrderedDict[str, float]" = OrderedDict()
        for design in designs:
            row[design] = flat[index].throughput_tx_per_s
            index += 1
        values[label] = row
    return values


def normalized_table(values, title: str) -> str:
    headers, rows = _normalized_rows(values)
    return format_table(headers, rows, title, float_format="%.3f")


# ---------------------------------------------------------------------------
# Comparative persistence-design testbed (extension figures)
# ---------------------------------------------------------------------------


def fig12x_extension_throughput(
    dataset: DatasetSize = DatasetSize.SMALL,
    scale: Optional[ExperimentScale] = None,
    designs: Sequence[str] = COMPARISON_DESIGN_NAMES,
    jobs: Optional[int] = None,
    cache=None,
):
    """Figure 12 extended: micro throughput including InCLL/CoW/Ckpt."""
    return fig12_micro_throughput(dataset, scale, designs, jobs=jobs, cache=cache)


def fig13x_extension_write_traffic(
    dataset: DatasetSize = DatasetSize.SMALL,
    scale: Optional[ExperimentScale] = None,
    designs: Sequence[str] = COMPARISON_DESIGN_NAMES,
    jobs: Optional[int] = None,
    cache=None,
):
    """Figure 13 extended: NVMM write traffic including InCLL/CoW/Ckpt.

    The interesting columns: CoW-Page's page-granularity copies amplify
    traffic under small transactions, while InCLL's colocated slots trade
    central-log control writes for embedded ones.
    """
    return fig13_write_traffic(dataset, scale, designs, jobs=jobs, cache=cache)


def extension_commit_latency(
    scale: Optional[ExperimentScale] = None,
    designs: Sequence[str] = COMPARISON_DESIGN_NAMES,
    offered_tx_per_s: float = 100_000.0,
    seed: int = 42,
):
    """Open-loop commit latency (arrival → commit persist) per design.

    One moderate offered-load point through the traffic engine; returns
    ``{design: {"p50_ns": ..., "p99_ns": ..., "mean_ns": ...}}``.
    """
    from repro.traffic.engine import TrafficConfig, run_traffic

    scale = scale or ExperimentScale()
    arrivals = max(scale.transactions(False, DatasetSize.SMALL), 30)
    traffic = TrafficConfig(
        offered_tx_per_s=offered_tx_per_s, arrivals=arrivals, seed=seed
    )
    out: "OrderedDict[str, Dict[str, float]]" = OrderedDict()
    for design in designs:
        result = run_traffic(design, traffic)
        out[design] = {
            "mean_ns": result.mean_latency_ns,
            "p50_ns": result.p50_latency_ns,
            "p99_ns": result.p99_latency_ns,
        }
    return out


def extension_latency_table(data=None) -> str:
    data = data or extension_commit_latency()
    rows = [
        [design, row["mean_ns"], row["p50_ns"], row["p99_ns"]]
        for design, row in data.items()
    ]
    return format_table(
        ["design", "mean (ns)", "p50 (ns)", "p99 (ns)"],
        rows,
        title="Extension designs: open-loop commit latency",
        float_format="%.0f",
    )


# ---------------------------------------------------------------------------
# Sensitivity studies
# ---------------------------------------------------------------------------


def fig15_buffer_sweep(
    ur_sizes: Sequence[int] = (1, 4, 16, 64, 128),
    redo_sizes: Sequence[int] = (2, 16, 32, 128),
    scale: Optional[ExperimentScale] = None,
):
    """Figure 15: throughput / traffic vs the two buffer sizes (echo).

    The sweep uses a working set larger than the L1, so lines with
    buffered redo data actually get evicted mid-transaction — that is
    what gives the redo buffer its role.
    """
    scale = scale or ExperimentScale()
    base = default_config()
    params = replace(DEFAULT_PARAMS, initial_items=2048, key_space=4096)
    out: "OrderedDict[Tuple[int, int], Tuple[float, int]]" = OrderedDict()
    for redo in redo_sizes:
        for ur in ur_sizes:
            config = base.with_changes(
                logging=replace(
                    base.logging,
                    undo_redo_buffer_entries=ur,
                    redo_buffer_entries=redo,
                )
            )
            result = run_design(
                "MorLog-SLDE", "echo", DatasetSize.SMALL, scale, config,
                params=params,
            )
            out[(ur, redo)] = (result.throughput_tx_per_s, result.nvmm_writes)
    return out


def fig16_thread_scaling(
    thread_counts: Sequence[int] = (1, 2, 4, 8, 16),
    dataset: DatasetSize = DatasetSize.SMALL,
    scale: Optional[ExperimentScale] = None,
    designs: Sequence[str] = DESIGN_NAMES,
    workloads: Sequence[str] = ("hash", "queue", "sps"),
):
    """Figure 16: normalized throughput vs thread count (micro subset).

    The paper sweeps 1-16 threads; counts beyond the Table III core count
    get a proportionally larger machine (one thread per core, as there).
    """
    from repro.common.config import CoreConfig

    scale = scale or ExperimentScale()
    out: "OrderedDict[int, OrderedDict[str, float]]" = OrderedDict()
    for n in thread_counts:
        config = default_config()
        if n > config.cores.n_cores:
            config = config.with_changes(cores=CoreConfig(n_cores=n))
        per_design: "OrderedDict[str, List[float]]" = OrderedDict(
            (d, []) for d in designs
        )
        for workload in workloads:
            row: Dict[str, float] = {}
            for design in designs:
                result = run_design(
                    design, workload, dataset, scale, config=config, n_threads=n
                )
                row[design] = result.throughput_tx_per_s
            for design in designs:
                per_design[design].append(row[design] / row[BASELINE])
        out[n] = OrderedDict(
            (d, geometric_mean(v)) for d, v in per_design.items()
        )
    return out


def sens_nvm_latency(
    scales_x: Sequence[float] = (1.0, 4.0, 16.0, 32.0),
    scale: Optional[ExperimentScale] = None,
    designs: Sequence[str] = ("FWB-CRADE", "MorLog-SLDE", "MorLog-DP"),
    workloads: Sequence[str] = ("hash", "queue"),
):
    """Section VI-E: normalized throughput vs NVMM write-latency scale."""
    scale = scale or ExperimentScale()
    base = default_config()
    out: "OrderedDict[float, OrderedDict[str, float]]" = OrderedDict()
    for factor in scales_x:
        config = base.with_changes(
            nvm=replace(base.nvm, write_latency_scale=factor)
        )
        per_design: "OrderedDict[str, List[float]]" = OrderedDict(
            (d, []) for d in designs
        )
        for workload in workloads:
            row: Dict[str, float] = {}
            for design in designs:
                result = run_design(design, workload, DatasetSize.SMALL, scale, config)
                row[design] = result.throughput_tx_per_s
            for design in designs:
                per_design[design].append(row[design] / row[designs[0]])
        out[factor] = OrderedDict(
            (d, geometric_mean(v)) for d, v in per_design.items()
        )
    return out
