"""Content-addressed on-disk cache for grid cell results.

A grid cell is fully determined by its inputs — (design, workload,
dataset, :class:`SystemConfig`, :class:`WorkloadParams`, transaction and
thread counts) plus the ``REPRO_SCALE`` environment knob — and seeded
workloads make every cell deterministic, so its :class:`RunResult` can be
stored under a hash of those inputs and replayed on any later run.  The
key is the SHA-256 of the inputs' canonical JSON (see
:mod:`repro.experiments.serialize`); changing any keyed input, or the
cache format version, yields a different key and therefore a miss.

Layout: ``<cache_dir>/<key[:2]>/<key>.json``, each file holding the key
inputs (for debuggability) next to the serialized result.  Writes go
through a temp file + :func:`os.replace` so concurrent writers can never
leave a torn entry, and corrupt/unreadable entries read as misses.
"""

import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.core.system import RunResult
from repro.experiments.serialize import (
    config_to_dict,
    params_to_dict,
    run_result_from_dict,
    run_result_to_dict,
    stable_hash,
    strip_result_inert_encoding,
)

# Bump when the key schema, the stored result format, *or the simulated
# results themselves* change; every existing entry then misses instead of
# replaying stale data.  Version 2: the SLDE pair-conflict fix changed
# encoded bit counts (and the golden SPS trace), so version-1 entries
# hold results from the buggy encoder.
CACHE_VERSION = 2

# Default location; override with --cache-dir / the REPRO_CACHE_DIR env.
ENV_CACHE_DIR = "REPRO_CACHE_DIR"


def default_cache_dir() -> str:
    env = os.environ.get(ENV_CACHE_DIR)
    if env:
        return env
    xdg = os.environ.get("XDG_CACHE_HOME") or os.path.expanduser("~/.cache")
    return os.path.join(xdg, "morlog-repro", "grid")


def cell_key_fields(
    design: str,
    workload: str,
    dataset_name: str,
    config_dict: Dict[str, Any],
    params_dict: Dict[str, Any],
    n_transactions: int,
    n_threads: int,
    repro_scale: float,
    trace_digest: Optional[str] = None,
) -> Dict[str, Any]:
    """The exact dict that is hashed into a cache key.

    Result-inert encoding fields (the codec-memo knobs — see
    :data:`repro.experiments.serialize.RESULT_INERT_ENCODING_FIELDS`) are
    dropped here: memoization cannot change a cell's result, so toggling
    it must map to the same key.

    ``trace_digest`` identifies the recorded trace a *replay* cell runs
    from (:meth:`repro.replay.StoreTrace.digest`); it joins the key only
    when set, so direct-run cells keep their historical keys, while any
    edit to a trace — content, metadata or container version — misses.
    """
    config_dict = strip_result_inert_encoding(config_dict)
    fields = {
        "version": CACHE_VERSION,
        "design": design,
        "workload": workload,
        "dataset": dataset_name,
        "config": config_dict,
        "params": params_dict,
        "n_transactions": n_transactions,
        "n_threads": n_threads,
        "repro_scale": repro_scale,
    }
    if trace_digest is not None:
        fields["trace_digest"] = trace_digest
    return fields


def cell_key(
    design: str,
    workload: str,
    dataset,
    config,
    params,
    n_transactions: int,
    n_threads: int,
    repro_scale: float,
) -> str:
    """Content hash of one grid cell's inputs (dataclass arguments)."""
    return stable_hash(
        cell_key_fields(
            design,
            workload,
            dataset.name,
            config_to_dict(config),
            params_to_dict(params),
            n_transactions,
            n_threads,
            repro_scale,
        )
    )


def traffic_key_fields(
    design: str,
    traffic_dict: Dict[str, Any],
    config_dict: Dict[str, Any],
    repro_scale: float,
) -> Dict[str, Any]:
    """Key inputs for one open-loop traffic cell (design × scenario).

    Shares :data:`CACHE_VERSION` with the grid keys on purpose: a bump
    that means "the simulator's results changed" must invalidate cached
    traffic results just like cached grid results.  The ``kind`` marker
    keeps the two key families from ever colliding.
    """
    return {
        "version": CACHE_VERSION,
        "kind": "traffic",
        "design": design,
        "traffic": traffic_dict,
        "config": strip_result_inert_encoding(config_dict),
        "repro_scale": repro_scale,
    }


@dataclass
class CacheStats:
    """Hit/miss counters for one engine invocation."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "stores": self.stores}


@dataclass
class PayloadCache:
    """Content-addressed store mapping keys to JSON payloads.

    The generic layer under :class:`ResultCache`: callers hand it any
    JSON-safe payload (the traffic engine stores TrafficResult dicts).
    A ``decode`` callable runs inside the error envelope, so an entry
    whose stored payload no longer decodes reads as a miss rather than
    an exception — the same forgiveness corrupt files get.
    """

    cache_dir: str = field(default_factory=default_cache_dir)
    stats: CacheStats = field(default_factory=CacheStats)

    def _path(self, key: str) -> str:
        return os.path.join(self.cache_dir, key[:2], key + ".json")

    def has(self, key: str) -> bool:
        """Whether an entry file exists for ``key`` (existence only — a
        torn entry still reads as a miss through :meth:`get_payload`)."""
        return os.path.isfile(self._path(key))

    def get_payload(self, key: str, decode=None) -> Optional[Any]:
        """The cached payload for ``key``, or None (counted hit/miss)."""
        try:
            with open(self._path(key)) as handle:
                payload = json.load(handle)
            value = payload["result"]
            if decode is not None:
                value = decode(value)
        except (OSError, ValueError, KeyError, TypeError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return value

    def put_payload(
        self, key: str, value: Any, key_fields: Optional[dict] = None
    ) -> None:
        """Store a JSON-safe payload atomically (tmp file + os.replace)."""
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        payload = {
            "key": key,
            "key_fields": key_fields,
            "result": value,
        }
        fd, tmp_path = tempfile.mkstemp(
            prefix=".tmp-" + key[:8] + "-", dir=os.path.dirname(path)
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        self.stats.stores += 1

    def __len__(self) -> int:
        if not os.path.isdir(self.cache_dir):
            return 0
        count = 0
        for _root, _dirs, files in os.walk(self.cache_dir):
            count += sum(1 for f in files if f.endswith(".json"))
        return count


@dataclass
class ResultCache(PayloadCache):
    """Content-addressed store mapping cell keys to RunResults."""

    def get(self, key: str) -> Optional[RunResult]:
        """The cached result for ``key``, or None (counted as hit/miss)."""
        return self.get_payload(key, decode=run_result_from_dict)

    def put(self, key: str, result: RunResult, key_fields: Optional[dict] = None) -> None:
        """Store ``result`` atomically (tmp file + os.replace)."""
        self.put_payload(key, run_result_to_dict(result), key_fields)
