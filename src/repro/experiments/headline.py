"""The abstract's three headline numbers, in one function.

    "MorLog improves performance by 72.5%, reduces NVMM write traffic by
    41.1%, and decreases NVMM write energy by 49.9% compared with the
    state-of-the-art design."

The comparison is MorLog-DP vs FWB-CRADE, geometric-mean across the
evaluation workloads.  This module computes the same three deltas on this
reproduction's substrate so the shape (sign, rough magnitude, ordering)
is checkable in one place.
"""

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.common.stats import geometric_mean
from repro.experiments.runner import ExperimentScale
from repro.workloads.base import DatasetSize

PAPER_HEADLINE = {
    "throughput_improvement_pct": 72.5,
    "write_traffic_reduction_pct": 41.1,
    "write_energy_reduction_pct": 49.9,
}

DEFAULT_CELLS: Tuple[Tuple[str, DatasetSize], ...] = (
    ("btree", DatasetSize.SMALL),
    ("hash", DatasetSize.SMALL),
    ("queue", DatasetSize.SMALL),
    ("rbtree", DatasetSize.SMALL),
    ("sdg", DatasetSize.SMALL),
    ("sps", DatasetSize.SMALL),
    ("echo", DatasetSize.SMALL),
    ("ycsb", DatasetSize.SMALL),
    ("tpcc", DatasetSize.SMALL),
)


@dataclass(frozen=True)
class HeadlineResult:
    """Measured counterparts of the abstract's three numbers."""

    throughput_improvement_pct: float
    write_traffic_reduction_pct: float
    write_energy_reduction_pct: float
    cells: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "throughput_improvement_pct": self.throughput_improvement_pct,
            "write_traffic_reduction_pct": self.write_traffic_reduction_pct,
            "write_energy_reduction_pct": self.write_energy_reduction_pct,
        }

    def shape_holds(self) -> bool:
        """All three effects point the paper's way."""
        return (
            self.throughput_improvement_pct > 0
            and self.write_traffic_reduction_pct > 0
            and self.write_energy_reduction_pct > 0
        )


def headline_comparison(
    scale: Optional[ExperimentScale] = None,
    cells: Sequence[Tuple[str, DatasetSize]] = DEFAULT_CELLS,
    design: str = "MorLog-DP",
    baseline: str = "FWB-CRADE",
    jobs: Optional[int] = None,
    cache=None,
) -> HeadlineResult:
    """Measure the abstract's three deltas on this substrate.

    ``jobs``/``cache`` fan the (baseline, design) cell pairs out through
    the parallel engine; the ratios are identical either way.
    """
    from repro.experiments.parallel import resolve_cell, run_cells

    specs = [
        resolve_cell(name, workload, dataset, scale)
        for workload, dataset in cells
        for name in (baseline, design)
    ]
    flat, _report = run_cells(specs, jobs=jobs or 1, cache=cache)
    throughput_ratios = []
    traffic_ratios = []
    energy_ratios = []
    for i, (workload, dataset) in enumerate(cells):
        base = flat[2 * i]
        ours = flat[2 * i + 1]
        throughput_ratios.append(
            ours.throughput_tx_per_s / base.throughput_tx_per_s
        )
        traffic_ratios.append(ours.nvmm_writes / base.nvmm_writes)
        energy_ratios.append(
            ours.nvmm_write_energy_pj / base.nvmm_write_energy_pj
        )
    return HeadlineResult(
        throughput_improvement_pct=100.0 * (geometric_mean(throughput_ratios) - 1.0),
        write_traffic_reduction_pct=100.0 * (1.0 - geometric_mean(traffic_ratios)),
        write_energy_reduction_pct=100.0 * (1.0 - geometric_mean(energy_ratios)),
        cells=len(list(cells)),
    )
