"""Sharded, resumable, fail-soft mega-grid sweep engine (ROADMAP item 4).

``repro.experiments.parallel`` fans a grid out over one batch
``ProcessPoolExecutor.map`` call — which a 10k+-cell design-space sweep
cannot survive: one worker exception kills the whole sweep, a hung cell
blocks it forever, and because results were only cached after *all*
outputs returned, an interrupted sweep lost every completed cell.  This
module replaces the batch call with per-future submission:

- the work list is written to disk first as a shard manifest of
  content-addressed cell keys (:mod:`repro.experiments.manifest`);
- at most ``jobs`` cells are in flight at a time, each with a bounded
  retry budget and an optional per-cell timeout, so one crashing or
  hanging cell *fails soft* — recorded as a typed :class:`CellFailure`
  — while every other cell completes;
- each cell's result streams into the content-addressed cache the
  moment its future resolves, and a progress event is appended to a
  JSONL stream next to the manifest, so a crash loses at most the cells
  in flight;
- resuming (:func:`run_megagrid` with ``resume=True``) reloads the
  manifest and re-runs only the cells the cache does not hold — the
  cache key is the exactly-once token;
- duplicate specs are deduplicated in flight (one simulation, fanned
  back out to every requesting index) and assembly is by cell identity,
  so a parallel, interrupted-and-resumed sweep is bit-identical to a
  sequential one.

``run_cells`` (grid) and ``run_traffic_cells`` (traffic sweeps) both
run on :func:`execute_payloads`, the shared per-future core.
"""

import json
import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import SimulationError
from repro.core.system import RunResult
from repro.experiments.manifest import (
    ShardManifest,
    build_manifest,
    load_manifest,
    write_manifest,
)
from repro.experiments.parallel import (
    CellReport,
    CellSpec,
    GridReport,
    _payload,
    _run_cell_payload,
    _trace_path,
    default_jobs,
)
from repro.experiments.serialize import run_result_from_dict


class CellExecutionError(SimulationError):
    """A cell failed after its retry budget in fail-fast mode."""


class GridAssemblyError(SimulationError):
    """A result was absent where positional assembly required one."""


class InjectedCellFault(RuntimeError):
    """Raised inside a worker by the chaos-injection seam (tests/CI)."""


def apply_injected_fault(payload: Dict[str, Any]) -> None:
    """Honour the ``_inject`` chaos seam inside a worker.

    ``run_megagrid(inject={key: {...}})`` arms one cell's payload with a
    fault spec; tests and the CI smoke job use it to exercise fail-soft,
    retry and timeout paths deterministically:

    - ``{"mode": "raise"}`` — raise :class:`InjectedCellFault`;
    - ``{"mode": "raise-once", "flag_path": p}`` — raise on the first
      attempt only (the flag file records that the fault already fired,
      surviving the process boundary), proving bounded retry;
    - ``{"mode": "sleep", "seconds": s}`` — hang the cell, proving the
      per-cell timeout.
    """
    spec = payload.get("_inject")
    if not spec:
        return
    mode = spec.get("mode")
    if mode == "raise":
        raise InjectedCellFault(spec.get("message", "injected worker fault"))
    if mode == "raise-once":
        flag = spec["flag_path"]
        if not os.path.exists(flag):
            with open(flag, "w") as handle:
                handle.write("tripped\n")
            raise InjectedCellFault("injected transient fault (first attempt)")
        return
    if mode == "sleep":
        time.sleep(float(spec["seconds"]))
        return
    raise ValueError("unknown injected fault mode %r" % (mode,))


@dataclass
class CellFailure:
    """One cell that could not produce a result — typed, never silent."""

    key: str
    design: str
    workload: str
    dataset: str
    kind: str          # "exception" | "timeout"
    message: str
    attempts: int
    seconds: float     # wall time burned on this cell across all attempts

    def as_dict(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "design": self.design,
            "workload": self.workload,
            "dataset": self.dataset,
            "kind": self.kind,
            "message": self.message,
            "attempts": self.attempts,
            "seconds": self.seconds,
        }

    def format(self) -> str:
        return "%s/%s/%s [%s]: %s after %d attempt(s) (%.2fs): %s" % (
            self.design, self.workload, self.dataset, self.key[:12],
            self.kind, self.attempts, self.seconds, self.message,
        )


@dataclass(frozen=True)
class ExecutionPolicy:
    """How hard the engine tries before a cell is declared failed."""

    jobs: int = 1
    retries: int = 0            # re-submissions after the first attempt
    timeout_s: Optional[float] = None  # per attempt, from submission
    fail_soft: bool = True      # False: first final failure raises


def _describe_spec(spec: CellSpec) -> Tuple[str, str, str]:
    return (spec.design, spec.workload, spec.dataset.name)


def _armed(payload: Dict[str, Any], inject, key: str) -> Dict[str, Any]:
    if inject and key in inject:
        payload = dict(payload, _inject=inject[key])
    return payload


def execute_payloads(
    entries: Sequence[Tuple[str, Dict[str, Any]]],
    worker: Callable[[Dict[str, Any]], Dict[str, Any]],
    policy: ExecutionPolicy,
    describe: Callable[[str], Tuple[str, str, str]],
    on_output: Optional[Callable[[str, Dict[str, Any], int], None]] = None,
    inject: Optional[Dict[str, Dict[str, Any]]] = None,
) -> Tuple[Dict[str, Dict[str, Any]], Dict[str, "CellFailure"]]:
    """Run unique (key, payload) work items with per-future submission.

    At most ``policy.jobs`` futures are in flight, so a per-cell
    deadline measured from submission approximates time-on-worker.
    ``on_output(key, output, attempts)`` fires in completion order — the
    streaming seam callers use for incremental ``cache.put`` — and any
    exception it raises (notably ``KeyboardInterrupt``) propagates after
    the executor is shut down, with everything already streamed kept.

    Returns ``(outputs, failures)`` keyed by cell key.  In fail-fast
    mode (``policy.fail_soft=False``) the first cell to exhaust its
    retry budget raises :class:`CellExecutionError` instead of filling
    ``failures``.  The inline path (``jobs<=1`` or a single item) cannot
    preempt a running cell, so timeouts only apply under a pool.
    """
    outputs: Dict[str, Dict[str, Any]] = {}
    failures: Dict[str, CellFailure] = {}

    def fail(key: str, kind: str, message: str, attempts: int, started: float):
        design, workload, dataset = describe(key)
        failure = CellFailure(
            key=key, design=design, workload=workload, dataset=dataset,
            kind=kind, message=message, attempts=attempts,
            seconds=time.perf_counter() - started,
        )
        if not policy.fail_soft:
            raise CellExecutionError(failure.format())
        failures[key] = failure

    if not entries:
        return outputs, failures
    if policy.jobs <= 1 or len(entries) == 1:
        for key, payload in entries:
            payload = _armed(payload, inject, key)
            started = time.perf_counter()
            attempts = 0
            while True:
                attempts += 1
                try:
                    output = worker(payload)
                except KeyboardInterrupt:
                    raise
                except Exception as error:
                    if attempts <= policy.retries:
                        continue
                    fail(key, "exception", "%s: %s"
                         % (type(error).__name__, error), attempts, started)
                    break
                outputs[key] = output
                if on_output is not None:
                    on_output(key, output, attempts)
                break
        return outputs, failures

    executor = ProcessPoolExecutor(max_workers=min(policy.jobs, len(entries)))
    queue = deque(
        (key, _armed(payload, inject, key), 1, None) for key, payload in entries
    )
    # future -> [key, payload, attempt, deadline, first_started]
    pending: Dict[Any, List[Any]] = {}
    abandoned = False

    def submit(key, payload, attempt, first_started):
        started = first_started if first_started is not None else time.perf_counter()
        deadline = (
            time.monotonic() + policy.timeout_s
            if policy.timeout_s is not None else None
        )
        try:
            future = executor.submit(worker, payload)
        except Exception as error:  # pool already broken/shut down
            fail(key, "exception", "submit failed: %s" % error, attempt, started)
            return
        pending[future] = [key, payload, attempt, deadline, started]

    try:
        while queue or pending:
            while queue and len(pending) < policy.jobs:
                key, payload, attempt, first_started = queue.popleft()
                submit(key, payload, attempt, first_started)
            if not pending:
                continue
            timeout = None
            if policy.timeout_s is not None:
                now = time.monotonic()
                timeout = max(
                    min(entry[3] for entry in pending.values()) - now, 0.0
                )
            done, _ = wait(
                set(pending), timeout=timeout, return_when=FIRST_COMPLETED
            )
            for future in done:
                key, payload, attempt, _deadline, started = pending.pop(future)
                try:
                    output = future.result()
                except Exception as error:
                    if attempt <= policy.retries:
                        queue.append((key, payload, attempt + 1, started))
                    else:
                        fail(key, "exception", "%s: %s"
                             % (type(error).__name__, error), attempt, started)
                    continue
                outputs[key] = output
                if on_output is not None:
                    on_output(key, output, attempt)
            if policy.timeout_s is not None:
                now = time.monotonic()
                overdue = [
                    future for future, entry in pending.items()
                    if entry[3] is not None and entry[3] <= now
                ]
                for future in overdue:
                    key, payload, attempt, _deadline, started = pending.pop(future)
                    if not future.cancel():
                        # Already running: a CPU-bound worker cannot be
                        # preempted, so orphan it and stop waiting.  Its
                        # eventual result (if any) is discarded.
                        abandoned = True
                    if attempt <= policy.retries:
                        queue.append((key, payload, attempt + 1, started))
                    else:
                        fail(
                            key, "timeout",
                            "exceeded %.3fs per-cell timeout"
                            % policy.timeout_s, attempt, started,
                        )
    finally:
        # Abandoned (hung) workers must not block shutdown; otherwise
        # drain in-flight cells so their results are not wasted ... the
        # completion loop above has already consumed everything done.
        executor.shutdown(wait=not abandoned, cancel_futures=True)
    return outputs, failures


class ProgressStream:
    """Append-only JSONL progress feed next to the manifest.

    One JSON object per line, flushed per event, so an external
    observer (or the PR-5 observatory tooling) can tail a long sweep and
    a crash never loses more than the line being written.
    """

    def __init__(self, path: Optional[str]):
        self.path = path
        self.events_written = 0
        if path:
            directory = os.path.dirname(os.path.abspath(path))
            os.makedirs(directory, exist_ok=True)

    def emit(self, status: str, **fields) -> None:
        if not self.path:
            return
        event = {"event": status, "unix_time": time.time()}
        event.update(fields)
        with open(self.path, "a") as handle:
            handle.write(json.dumps(event, sort_keys=True) + "\n")
        self.events_written += 1

    def cell(self, status: str, key: str, spec: CellSpec, **fields) -> None:
        self.emit(
            status,
            key=key,
            design=spec.design,
            workload=spec.workload,
            dataset=spec.dataset.name,
            **fields,
        )


@dataclass
class MegaGridReport(GridReport):
    """GridReport plus the typed failure list and resume provenance."""

    failures: List[CellFailure] = field(default_factory=list)
    resumed: bool = False

    def summary(self) -> str:
        text = GridReport.summary(self)
        if self.resumed:
            text += " [resumed]"
        if self.failures:
            text += ", %d FAILED" % len(self.failures)
        return text


@dataclass
class MegaGridOutcome:
    """Everything one engine invocation produced, absence made explicit.

    ``results`` aligns index-for-index with ``specs``; a failed cell
    holds ``None`` there *and* a typed entry in ``failures`` — positions
    never shift, so downstream assembly cannot misattribute results.
    """

    specs: List[CellSpec]
    results: List[Optional[RunResult]]
    failures: List[CellFailure]
    report: MegaGridReport
    manifest: Optional[ShardManifest] = None
    manifest_path: Optional[str] = None

    def by_key(self) -> Dict[str, RunResult]:
        out: Dict[str, RunResult] = {}
        for spec, result in zip(self.specs, self.results):
            if result is not None:
                out[spec.key()] = result
        return out

    def grid(self) -> Dict[str, Dict[str, RunResult]]:
        """Assemble ``{workload: {design: result}}`` by cell identity.

        Raises :class:`GridAssemblyError` if any cell is absent — the
        caller must look at ``failures`` instead of receiving a grid
        with silently missing (or worse, shifted) cells.
        """
        if self.failures or any(r is None for r in self.results):
            raise GridAssemblyError(
                "cannot assemble a full grid: %d cell(s) failed (%s)"
                % (
                    len(self.failures),
                    "; ".join(f.format() for f in self.failures[:3]) or
                    "results missing",
                )
            )
        out: Dict[str, Dict[str, RunResult]] = {}
        for spec, result in zip(self.specs, self.results):
            out.setdefault(spec.workload, {})[spec.design] = result
        return out


def progress_path_for(manifest_path: str) -> str:
    return manifest_path + ".progress.jsonl"


def run_megagrid(
    specs: Optional[Sequence[CellSpec]] = None,
    manifest_path: Optional[str] = None,
    resume: bool = False,
    jobs: Optional[int] = None,
    cache=None,
    retries: int = 1,
    timeout_s: Optional[float] = None,
    fail_soft: bool = True,
    shards: Optional[int] = None,
    trace_dir: Optional[str] = None,
    progress_path: Optional[str] = None,
    meta: Optional[Dict[str, Any]] = None,
    on_cell: Optional[Callable[[str, CellSpec, RunResult], None]] = None,
    interrupt_after: Optional[int] = None,
    inject: Optional[Dict[str, Dict[str, Any]]] = None,
) -> MegaGridOutcome:
    """Run (or resume) a sharded, fail-soft, streaming grid sweep.

    Fresh sweep: pass ``specs`` (and optionally ``manifest_path`` to
    persist the shard manifest before execution).  Resume: pass
    ``resume=True`` with ``manifest_path``; the frozen specs come from
    the manifest (so ``REPRO_SCALE`` etc. apply exactly once, at
    manifest creation) and only cells missing from ``cache`` run.

    Fail-soft semantics: a cell that exhausts ``retries`` (or blows
    ``timeout_s``) becomes a :class:`CellFailure` in the outcome, its
    ``results`` slot stays ``None``, and every other cell completes.
    ``fail_soft=False`` restores fail-fast: the first final failure
    raises :class:`CellExecutionError` — with everything already
    completed safely in the cache, because results stream into it as
    each future resolves, not after the batch.

    ``interrupt_after=N`` raises ``KeyboardInterrupt`` from the
    completion loop after N simulated cells have streamed to the cache:
    a deterministic stand-in for a mid-flight hard kill, used by the
    kill-and-resume tests and the CI smoke job.

    ``on_cell(key, spec, result)`` fires per simulated cell, in
    completion order, after the cache write — the live-observatory seam.
    """
    jobs = jobs or default_jobs()
    manifest: Optional[ShardManifest] = None
    if resume:
        if manifest_path is None:
            raise ValueError("resume=True requires manifest_path")
        manifest = load_manifest(manifest_path)
        specs = manifest.specs()
    else:
        if specs is None:
            raise ValueError("pass specs (or resume=True with manifest_path)")
        specs = list(specs)
        if manifest_path is not None:
            manifest = build_manifest(
                specs, shards=shards or jobs, meta=meta)
            write_manifest(manifest_path, manifest)
    if not specs:
        return MegaGridOutcome(
            specs=[], results=[], failures=[],
            report=MegaGridReport(jobs=jobs, resumed=resume),
            manifest=manifest, manifest_path=manifest_path,
        )
    if progress_path is None and manifest_path is not None:
        progress_path = progress_path_for(manifest_path)
    progress = ProgressStream(progress_path)

    report = MegaGridReport(jobs=jobs, resumed=resume)
    started = time.perf_counter()
    if trace_dir is not None:
        os.makedirs(trace_dir, exist_ok=True)

    # Dedupe in-flight cells by content key: the first index owns the
    # simulation, every later duplicate fans out from it.
    keys = [spec.key() for spec in specs]
    order: Dict[str, List[int]] = {}
    for i, key in enumerate(keys):
        order.setdefault(key, []).append(i)

    results: List[Optional[RunResult]] = [None] * len(specs)
    reports: List[Optional[CellReport]] = [None] * len(specs)
    to_run: List[str] = []
    cached_keys: List[str] = []
    for key, indices in order.items():
        spec = specs[indices[0]]
        cached = cache.get(key) if cache is not None else None
        if cached is None:
            to_run.append(key)
            continue
        cached_keys.append(key)
        trace_path = _trace_path(trace_dir, spec)
        if trace_path is not None and not os.path.exists(trace_path):
            trace_path = None
        for position, i in enumerate(indices):
            results[i] = cached
            reports[i] = CellReport(
                spec.design, spec.workload, spec.dataset.name, True, 0.0,
                key, trace_path=trace_path, deduped=position > 0,
            )

    progress.emit(
        "start",
        cells=len(specs),
        unique=len(order),
        cached=len(cached_keys),
        missing=len(to_run),
        resumed=resume,
        jobs=jobs,
    )
    for key in cached_keys:
        progress.cell("cached", key, specs[order[key][0]])

    simulated = 0

    def handle_output(key: str, output: Dict[str, Any], attempts: int) -> None:
        nonlocal simulated
        indices = order[key]
        spec = specs[indices[0]]
        result = run_result_from_dict(output["result"])
        if cache is not None:
            # Stream into the cache *now* — an interruption one cell
            # later must not lose this one.
            cache.put(key, result, key_fields=spec.key_fields())
        for position, i in enumerate(indices):
            results[i] = result
            reports[i] = CellReport(
                spec.design, spec.workload, spec.dataset.name,
                position > 0,           # duplicates report as hits
                output["seconds"] if position == 0 else 0.0,
                key,
                trace_path=output.get("trace_path"),
                deduped=position > 0,
            )
        progress.cell(
            "completed", key, spec,
            seconds=output["seconds"], attempts=attempts,
        )
        if on_cell is not None:
            on_cell(key, spec, result)
        simulated += 1
        if interrupt_after is not None and simulated >= interrupt_after:
            raise KeyboardInterrupt(
                "megagrid: interrupted after %d simulated cell(s)" % simulated
            )

    entries = [
        (
            key,
            _payload(
                specs[order[key][0]],
                _trace_path(trace_dir, specs[order[key][0]]),
            ),
        )
        for key in to_run
    ]
    policy = ExecutionPolicy(
        jobs=jobs, retries=retries, timeout_s=timeout_s, fail_soft=fail_soft
    )
    _outputs, failure_map = execute_payloads(
        entries,
        _run_cell_payload,
        policy,
        describe=lambda key: _describe_spec(specs[order[key][0]]),
        on_output=handle_output,
        inject=inject,
    )
    for key, failure in failure_map.items():
        progress.cell(
            "failed", key, specs[order[key][0]],
            kind=failure.kind, message=failure.message,
            attempts=failure.attempts,
        )

    report.cells = [r for r in reports if r is not None]
    report.failures = list(failure_map.values())
    report.wall_seconds = time.perf_counter() - started
    progress.emit(
        "finish",
        completed=sum(1 for r in results if r is not None),
        failed=len(report.failures),
        wall_seconds=report.wall_seconds,
    )
    return MegaGridOutcome(
        specs=list(specs),
        results=results,
        failures=report.failures,
        report=report,
        manifest=manifest,
        manifest_path=manifest_path,
    )


def resume_megagrid(
    manifest_path: str,
    jobs: Optional[int] = None,
    cache=None,
    **kwargs,
) -> MegaGridOutcome:
    """Resume a sweep from its manifest (sugar for ``resume=True``)."""
    return run_megagrid(
        manifest_path=manifest_path, resume=True, jobs=jobs, cache=cache,
        **kwargs,
    )


def megagrid_records(outcome: MegaGridOutcome, sweep_name: str = "megagrid"):
    """Observatory summary of one sweep as PR-5 BenchRecords.

    All ``info`` direction: sweep shape is provenance, not a gated
    metric.  The config digest covers the manifest's cell keys, so two
    different sweeps can never be compared as one.
    """
    from repro.bench.records import INFO, record
    from repro.experiments.serialize import stable_hash

    digest = stable_hash(sorted({spec.key() for spec in outcome.specs}))
    benchmark = "megagrid/%s" % sweep_name
    report = outcome.report
    values = [
        ("cells_total", float(len(outcome.specs))),
        ("cells_simulated", float(report.simulated_cells)),
        ("cells_cached", float(report.hits)),
        ("cells_failed", float(len(outcome.failures))),
        ("wall_seconds", report.wall_seconds),
        ("simulated_seconds", report.simulated_seconds),
    ]
    return [
        record(benchmark, metric, value, direction=INFO, config_digest=digest)
        for metric, value in values
    ]
