"""Shard manifests: the on-disk ground truth of a mega-grid sweep.

A 10k+-cell sweep (designs × workloads × configs, ROADMAP item 4) runs
across long wall-clock windows and must survive crashes, so the full
work list is written to disk *before* execution as a manifest of
content-addressed cell keys: every cell's serialized
:class:`~repro.experiments.parallel.CellSpec` next to the SHA-256 cache
key it resolves to, plus a deterministic shard assignment derived from
the key itself.  Resuming a partially-run sweep is then just "load the
manifest, re-run whatever the result cache does not already hold" — the
cache key doubles as the exactly-once token, so a cell that completed
before the crash is never simulated again.

Manifests are plain JSON (atomic write via temp file + ``os.replace``)
and self-validating on load: a version mismatch raises
:class:`ManifestVersionError`, structural damage raises
:class:`ManifestError`, and every cell's spec is re-hashed against its
recorded key so a hand-edited spec can never replay a stale result
under the old key.
"""

import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.common.errors import SimulationError
from repro.experiments.parallel import CellSpec, spec_from_dict, spec_to_dict

#: Bump when the manifest schema changes; old manifests then fail loudly
#: instead of misparsing.
MANIFEST_VERSION = 1


class ManifestError(SimulationError):
    """A manifest file is structurally invalid or internally inconsistent."""


class ManifestVersionError(ManifestError):
    """A manifest was written by an incompatible schema version."""


def shard_of(key: str, shards: int) -> int:
    """Deterministic shard for a cell key: content-addressed, so the
    assignment survives resume and is identical on every host."""
    return int(key[:8], 16) % max(shards, 1)


@dataclass
class ShardManifest:
    """The complete work list of one sweep, written before execution."""

    cells: List[Dict[str, Any]] = field(default_factory=list)
    shards: int = 1
    meta: Dict[str, Any] = field(default_factory=dict)
    version: int = MANIFEST_VERSION
    created_unix: float = 0.0

    def keys(self) -> List[str]:
        return [cell["key"] for cell in self.cells]

    def specs(self) -> List[CellSpec]:
        return [spec_from_dict(cell["spec"]) for cell in self.cells]

    def shard_keys(self, shard: int) -> List[str]:
        return [c["key"] for c in self.cells if c["shard"] == shard]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "created_unix": self.created_unix,
            "shards": self.shards,
            "meta": self.meta,
            "cells": self.cells,
        }


def build_manifest(
    specs: Sequence[CellSpec],
    shards: int = 1,
    meta: Optional[Dict[str, Any]] = None,
) -> ShardManifest:
    """Resolve specs into a manifest (keys, shard assignment, metadata).

    Duplicate specs keep their positions — execution dedupes in flight —
    so the manifest always mirrors the caller's grid shape exactly.
    """
    shards = max(int(shards), 1)
    cells = []
    for spec in specs:
        key = spec.key()
        cells.append({
            "key": key,
            "shard": shard_of(key, shards),
            "spec": spec_to_dict(spec),
        })
    return ShardManifest(
        cells=cells,
        shards=shards,
        meta=dict(meta or {}),
        created_unix=time.time(),
    )


def write_manifest(path: str, manifest: ShardManifest) -> str:
    """Atomically persist the manifest (temp file + ``os.replace``)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(prefix=".manifest-", dir=directory)
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(manifest.to_dict(), handle, indent=1, sort_keys=True)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    return path


def load_manifest(path: str, verify_keys: bool = True) -> ShardManifest:
    """Load and validate a manifest written by :func:`write_manifest`.

    ``verify_keys`` re-hashes every cell's spec and compares it against
    the recorded key (the content-addressed integrity check); pass False
    only when scanning very large manifests for display.
    """
    try:
        with open(path) as handle:
            data = json.load(handle)
    except OSError as error:
        raise ManifestError("cannot read manifest %s: %s" % (path, error))
    except ValueError as error:
        raise ManifestError("manifest %s is not valid JSON: %s" % (path, error))
    if not isinstance(data, dict):
        raise ManifestError("manifest %s: expected a JSON object" % path)
    version = data.get("version")
    if version != MANIFEST_VERSION:
        raise ManifestVersionError(
            "manifest %s has version %r, this build reads %d"
            % (path, version, MANIFEST_VERSION)
        )
    cells = data.get("cells")
    if not isinstance(cells, list) or not cells:
        raise ManifestError("manifest %s: missing or empty 'cells'" % path)
    shards = data.get("shards")
    if not isinstance(shards, int) or shards < 1:
        raise ManifestError("manifest %s: invalid 'shards' %r" % (path, shards))
    for index, cell in enumerate(cells):
        if not isinstance(cell, dict) or "key" not in cell or "spec" not in cell:
            raise ManifestError(
                "manifest %s: cell #%d lacks key/spec" % (path, index)
            )
        if verify_keys:
            try:
                recomputed = spec_from_dict(cell["spec"]).key()
            except (KeyError, ValueError, TypeError) as error:
                raise ManifestError(
                    "manifest %s: cell #%d spec does not parse: %s"
                    % (path, index, error)
                )
            if recomputed != cell["key"]:
                raise ManifestError(
                    "manifest %s: cell #%d key %s does not match its spec"
                    " (recomputed %s) — manifest edited or stale?"
                    % (path, index, cell["key"][:12], recomputed[:12])
                )
    return ShardManifest(
        cells=cells,
        shards=shards,
        meta=data.get("meta") or {},
        version=version,
        created_unix=float(data.get("created_unix") or 0.0),
    )


def manifest_status(manifest: ShardManifest, cache) -> Dict[str, List[str]]:
    """Split the manifest's unique keys into done (cached) vs missing.

    Uses the cache's existence check only — resume itself re-reads each
    entry through the decoding path, so a torn entry still re-runs.
    """
    done: List[str] = []
    missing: List[str] = []
    seen = set()
    for key in manifest.keys():
        if key in seen:
            continue
        seen.add(key)
        if cache is not None and cache.has(key):
            done.append(key)
        else:
            missing.append(key)
    return {"done": done, "missing": missing}
