"""Experiment harness: one entry point per paper table and figure.

Every public function in :mod:`repro.experiments.figures` regenerates one
evaluation artifact (Figure 3/5/12-16, Table I/II/V/VI, and the section
VI-E sensitivity study) and returns its data in a structured form; the
``benchmarks/`` tree wraps each one in a pytest-benchmark case that also
prints the paper-shaped table.
"""

from repro.experiments.runner import ExperimentScale, run_design, run_grid
from repro.experiments.headline import HeadlineResult, headline_comparison
from repro.experiments import figures

__all__ = [
    "ExperimentScale",
    "run_design",
    "run_grid",
    "figures",
    "HeadlineResult",
    "headline_comparison",
]
