"""Experiment harness: one entry point per paper table and figure.

Every public function in :mod:`repro.experiments.figures` regenerates one
evaluation artifact (Figure 3/5/12-16, Table I/II/V/VI, and the section
VI-E sensitivity study) and returns its data in a structured form; the
``benchmarks/`` tree wraps each one in a pytest-benchmark case that also
prints the paper-shaped table.

Grids run through :mod:`repro.experiments.megagrid` — the sharded,
resumable, fail-soft sweep engine (per-future submission, streaming
cache writes, shard manifests from :mod:`repro.experiments.manifest`) —
backed by the content-addressed result cache in
:mod:`repro.experiments.cache`; :mod:`repro.experiments.parallel` keeps
the spec-resolution layer and the strict ``run_cells`` wrapper.  Figure
artifacts (Vega-Lite + CSV) come from :mod:`repro.experiments.vega`.
"""

from repro.experiments.runner import ExperimentScale, run_design, run_grid
from repro.experiments.headline import HeadlineResult, headline_comparison
from repro.experiments.cache import ResultCache, default_cache_dir
from repro.experiments.parallel import (
    CellSpec,
    GridOutcome,
    GridReport,
    default_jobs,
    resolve_cell,
    run_cells,
    run_grid_parallel,
)
from repro.experiments.manifest import (
    ShardManifest,
    build_manifest,
    load_manifest,
    manifest_status,
    write_manifest,
)
from repro.experiments.megagrid import (
    CellFailure,
    GridAssemblyError,
    MegaGridOutcome,
    MegaGridReport,
    resume_megagrid,
    run_megagrid,
)
from repro.experiments.vega import (
    discover_figures,
    grid_vega_spec,
    validate_vega_lite,
    write_figure,
)
from repro.experiments import figures

__all__ = [
    "ExperimentScale",
    "run_design",
    "run_grid",
    "figures",
    "HeadlineResult",
    "headline_comparison",
    "ResultCache",
    "default_cache_dir",
    "CellSpec",
    "GridOutcome",
    "GridReport",
    "default_jobs",
    "resolve_cell",
    "run_cells",
    "run_grid_parallel",
    "ShardManifest",
    "build_manifest",
    "load_manifest",
    "manifest_status",
    "write_manifest",
    "CellFailure",
    "GridAssemblyError",
    "MegaGridOutcome",
    "MegaGridReport",
    "resume_megagrid",
    "run_megagrid",
    "discover_figures",
    "grid_vega_spec",
    "validate_vega_lite",
    "write_figure",
]
