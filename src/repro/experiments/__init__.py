"""Experiment harness: one entry point per paper table and figure.

Every public function in :mod:`repro.experiments.figures` regenerates one
evaluation artifact (Figure 3/5/12-16, Table I/II/V/VI, and the section
VI-E sensitivity study) and returns its data in a structured form; the
``benchmarks/`` tree wraps each one in a pytest-benchmark case that also
prints the paper-shaped table.

Grids run through :mod:`repro.experiments.parallel` (process-pool fan-out
with deterministic assembly) backed by the content-addressed result cache
in :mod:`repro.experiments.cache`.
"""

from repro.experiments.runner import ExperimentScale, run_design, run_grid
from repro.experiments.headline import HeadlineResult, headline_comparison
from repro.experiments.cache import ResultCache, default_cache_dir
from repro.experiments.parallel import (
    CellSpec,
    GridOutcome,
    GridReport,
    default_jobs,
    resolve_cell,
    run_cells,
    run_grid_parallel,
)
from repro.experiments import figures

__all__ = [
    "ExperimentScale",
    "run_design",
    "run_grid",
    "figures",
    "HeadlineResult",
    "headline_comparison",
    "ResultCache",
    "default_cache_dir",
    "CellSpec",
    "GridOutcome",
    "GridReport",
    "default_jobs",
    "resolve_cell",
    "run_cells",
    "run_grid_parallel",
]
