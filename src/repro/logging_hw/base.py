"""Common machinery of the hardware logging designs."""

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.cache.cacheline import CacheLine
from repro.cache.hierarchy import CacheHierarchy, CacheListener
from repro.common.config import SystemConfig
from repro.common.stats import StatGroup
from repro.encoding.slde import LogWriteContext
from repro.logging_hw.entries import CommitRecord, EntryType, LogEntry
from repro.logging_hw.region import LogRegion
from repro.memory.controller import MemoryController
from repro.nvm.module import LogDataWord, WriteResult

# Fixed pipeline cost of executing the commit sequence, in cycles.
COMMIT_OVERHEAD_CYCLES = 10


@dataclass
class TransactionInfo:
    """Book-keeping for one durable transaction."""

    tid: int
    txid: int
    begin_ns: float
    committed: bool = False
    commit_ns: float = 0.0
    n_stores: int = 0


class HardwareLogger(CacheListener):
    """Base class for FWB and MorLog; owns the log region plumbing.

    Subclasses implement the three hooks the system calls on the hot path
    (:meth:`on_store`, :meth:`commit_tx`, :meth:`tick`) plus the
    :class:`CacheListener` callbacks.
    """

    name = "abstract"

    def __init__(
        self,
        config: SystemConfig,
        controller: MemoryController,
        region: LogRegion,
        stats: Optional[StatGroup] = None,
    ) -> None:
        self.config = config
        self.controller = controller
        self.region = region
        self.stats = stats if stats is not None else StatGroup("logger")
        # SLDE dirty flags exist only when the log codec is SLDE.
        self.use_dirty_flags = config.encoding.log_codec == "slde"
        self.hierarchy: Optional[CacheHierarchy] = None
        self._next_txid = 1
        self._commit_timestamp = 0
        self._evict_age_ns = (
            config.logging.eager_evict_cycles * config.cores.ns_per_cycle
        )
        self._commit_overhead_ns = COMMIT_OVERHEAD_CYCLES * config.cores.ns_per_cycle
        # Hook the system installs to learn when in-place data persist
        # (drives the transaction-table truncation policy, section III-F).
        self.data_persisted_hook = None
        # Fault-injection plan (see repro.faultinject.plan), installed by
        # System.install_crash_plan on every persistence layer at once.
        self.crash_plan = None
        # Trace bus (see repro.trace), installed by System.install_tracer.
        # Observation-only: emissions never touch simulated state or time.
        self.tracer = None
        # Interned LogWriteContext instances, see _log_context.
        self._context_cache: dict = {}

    #: Bound on interned contexts; the cache resets wholesale past it
    #: (values are frozen, so dropping them is always safe).
    _CONTEXT_CACHE_MAX = 4096

    def on_data_persisted(self, line_addr: int, now_ns: float) -> None:
        if self.data_persisted_hook is not None:
            self.data_persisted_hook(line_addr)

    # ------------------------------------------------------------------
    # Transaction lifecycle (hot-path hooks, subclass responsibility)
    # ------------------------------------------------------------------

    def begin_tx(self, tid: int, now_ns: float) -> TransactionInfo:
        txid = self._next_txid
        self._next_txid += 1
        self.stats.add("transactions")
        return TransactionInfo(tid=tid, txid=txid, begin_ns=now_ns)

    def on_store(
        self,
        tx: TransactionInfo,
        line: CacheLine,
        word_index: int,
        old_word: int,
        new_word: int,
        now_ns: float,
    ) -> float:
        """Called with the old L1 value *before* the store lands."""
        raise NotImplementedError

    def commit_tx(self, tx: TransactionInfo, now_ns: float) -> float:
        raise NotImplementedError

    def tick(self, now_ns: float) -> float:
        """Age-based buffer evictions; called once per executed op."""
        raise NotImplementedError

    def drain(self, now_ns: float) -> float:
        """Flush every buffered log entry (end of run / clean shutdown)."""
        raise NotImplementedError

    def on_fwb_scan(self, now_ns: float) -> float:
        """Called after each force-write-back scan, before truncation.

        No transaction has in-flight persistent state at this boundary
        (the scan wrote every dirty line back), so designs with durable
        side state — the InCLL epoch word, the CoW page-table watermark —
        advance it here.  The default is a no-op.
        """
        return now_ns

    def recover_design_state(self, state) -> None:
        """Design-private recovery pass, run after the central-log pass.

        ``state`` is the :class:`repro.logging_hw.recovery.RecoveredState`
        the log scan produced.  Implementations must read only durable
        NVMM state (the volatile machine is gone after a crash), mutate
        home words exclusively through ``array.write_logical`` (so the
        sweep's journaled probes roll back cleanly), and synthesize a
        ScannedRecord for every word they touch so the oracle's
        idempotence set covers it.  The default is a no-op.
        """

    def on_nt_store(
        self, tx: TransactionInfo, addr: int, value: int, now_ns: float
    ) -> float:
        """A non-temporal store inside a transaction (section III-F).

        The cache-bypassing store cannot supply undo data without an NVMM
        read, so only redo data are logged; all bytes count as dirty.  The
        base implementation persists the redo entry immediately; MorLog
        overrides this to use the redo buffer (flushed ahead of the commit
        record under both protocols, so recovery sees the entry before the
        commit).
        """
        entry = LogEntry(
            type=EntryType.REDO,
            tid=tx.tid,
            txid=tx.txid,
            addr=addr,
            redo=value,
            dirty_mask=0xFF,
        )
        result = self.persist_entry(entry, now_ns)
        self.stats.add("nt_stores")
        return now_ns + result.schedule.stall_ns

    # ------------------------------------------------------------------
    # Shared log-write plumbing
    # ------------------------------------------------------------------

    def _log_context(self, entry: LogEntry) -> Optional[LogWriteContext]:
        if not self.use_dirty_flags:
            return None
        # Contexts repeat heavily (same undo value + dirty mask across a
        # workload's store stream); intern them so the SLDE hot path and
        # its memo keys reuse one frozen instance per distinct pair.
        key = (entry.undo, entry.dirty_mask)
        context = self._context_cache.get(key)
        if context is None:
            if len(self._context_cache) >= self._CONTEXT_CACHE_MAX:
                self._context_cache.clear()
            context = LogWriteContext(old_word=entry.undo, dirty_mask=entry.dirty_mask)
            self._context_cache[key] = context
        return context

    def persist_entry(self, entry: LogEntry, now_ns: float) -> WriteResult:
        """Write one buffer entry to the log region."""
        plan = self.crash_plan
        if plan is not None:
            plan.fire("log-append", txid=entry.txid, addr=entry.addr)
        context = self._log_context(entry)
        undo = None
        if entry.type is EntryType.UNDO_REDO:
            undo = LogDataWord(entry.undo, context)
        redo = LogDataWord(entry.redo, context)
        result = self.region.append(entry, now_ns, undo=undo, redo=redo)
        self.stats.add("entries_persisted")
        if plan is not None:
            point = (
                "redo-persisted"
                if entry.type is EntryType.REDO
                else "undo-persisted"
            )
            plan.fire(point, txid=entry.txid, addr=entry.addr)
        if self.tracer is not None:
            self.tracer.emit(
                "redo-persist" if entry.type is EntryType.REDO else "undo-persist",
                "log",
                now_ns,
                txid=entry.txid,
                addr=entry.addr,
                dur_ns=result.schedule.stall_ns,
                slots=entry.type.n_slots,
            )
        self._entry_persisted(entry, result, now_ns)
        return result

    def _entry_persisted(self, entry: LogEntry, result: WriteResult, now_ns: float) -> None:
        """Subclass hook: update L1 word states after a persist."""

    def persist_commit(self, record: CommitRecord, now_ns: float) -> WriteResult:
        plan = self.crash_plan
        if plan is not None:
            plan.fire("commit-record", txid=record.txid)
        result = self.region.append(record, now_ns)
        self.stats.add("commits_persisted")
        if plan is not None:
            plan.fire("commit-persisted", txid=record.txid)
        if self.tracer is not None:
            self.tracer.emit(
                "commit-persist",
                "log",
                now_ns,
                txid=record.txid,
                dur_ns=result.schedule.stall_ns,
                timestamp=record.timestamp,
            )
        return result

    def next_commit_timestamp(self) -> int:
        self._commit_timestamp += 1
        return self._commit_timestamp

    # ------------------------------------------------------------------
    # Helpers for subclasses
    # ------------------------------------------------------------------

    def _persist_many(self, entries: List[LogEntry], now_ns: float) -> Tuple[float, float]:
        """Persist a batch; returns (producer time, last persist-accept time)."""
        last_accept = now_ns
        for entry in entries:
            result = self.persist_entry(entry, now_ns)
            last_accept = max(last_accept, result.schedule.accept_ns)
            # Queue-full stalls hit the producer.
            now_ns = max(now_ns, now_ns + result.schedule.stall_ns)
        return now_ns, last_accept

    def _lookup_l1_line(self, tid: int, addr: int) -> Optional[CacheLine]:
        if self.hierarchy is None:
            return None
        if tid >= len(self.hierarchy.l1s):
            return None
        return self.hierarchy.l1s[tid].lookup(addr, touch=False)
