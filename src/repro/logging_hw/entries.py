"""Log entry formats (paper Figure 7) and their log-region packing.

Every buffer entry carries a 2-bit type, an 8-bit thread ID, a 16-bit
transaction ID, a 48-bit word address and one or two words of log data.  In
the log region an entry occupies two metadata words plus its data words:

- metadata word 0: type | tid | txid | torn bit | ulog counter | sequence
  number (the sequence number is our addition — it disambiguates the wrap
  point of the circular region, see DESIGN.md substitutions);
- metadata word 1: home word address | per-byte dirty flag | timestamp
  low bits (distributed-log commit records, section III-F).

Log data words are stored at word granularity, exactly the paper's logging
granularity (section III-A).
"""

import enum
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.common.bitops import WORD_BYTES, mask_word


class EntryType(enum.Enum):
    UNDO_REDO = 0
    REDO = 1
    COMMIT = 2
    UNDO = 3    # undo-only designs (the ATOM-style ablation baseline)

    @property
    def n_data_words(self) -> int:
        return {
            EntryType.UNDO_REDO: 2,
            EntryType.REDO: 1,
            EntryType.COMMIT: 0,
            EntryType.UNDO: 1,
        }[self]

    @property
    def n_slots(self) -> int:
        """Total 64-bit log-region slots the entry occupies."""
        return 2 + self.n_data_words


_TYPE_BITS = 2
_TID_BITS = 8
_TXID_BITS = 16
_TORN_BITS = 1
_ULOG_BITS = 16
_SEQ_BITS = 20
_ADDR_BITS = 48
_MASK_BITS = 8


@dataclass(frozen=True)
class LogEntry:
    """One undo+redo or redo log entry."""

    type: EntryType
    tid: int
    txid: int
    addr: int                       # 64-bit-aligned home address
    redo: int                       # newest value of the word
    undo: Optional[int] = None      # oldest value (UNDO_REDO only)
    dirty_mask: int = 0xFF          # per-byte dirty flag (section IV-A)

    def __post_init__(self) -> None:
        if self.addr % WORD_BYTES:
            raise ValueError("log entries are word aligned")
        if self.type in (EntryType.UNDO_REDO, EntryType.UNDO) and self.undo is None:
            raise ValueError("undo-carrying entries need undo data")
        if self.type is EntryType.REDO and self.undo is not None:
            raise ValueError("redo entries carry no undo data")
        if self.type is EntryType.COMMIT:
            raise ValueError("commit records use CommitRecord")

    @property
    def key(self) -> Tuple[int, int, int]:
        """Coalescing key: the same word written by the same transaction."""
        return (self.tid, self.txid, self.addr)


@dataclass(frozen=True)
class CommitRecord:
    """Transaction commit record.

    ``ulog_counter`` backs the delay-persistence protocol (section III-C):
    the number of L1 words still holding unlogged redo data at commit.
    ``timestamp`` orders commits across distributed per-thread logs
    (section III-F).
    """

    tid: int
    txid: int
    ulog_counter: int = 0
    timestamp: int = 0

    @property
    def type(self) -> EntryType:
        return EntryType.COMMIT


def pack_meta_words(
    record,
    torn: int,
    seq: int,
) -> List[int]:
    """Pack an entry or commit record into its two metadata words."""
    entry_type = record.type
    ulog = getattr(record, "ulog_counter", 0)
    meta0 = (
        (entry_type.value & ((1 << _TYPE_BITS) - 1))
        | ((record.tid & ((1 << _TID_BITS) - 1)) << _TYPE_BITS)
        | ((record.txid & ((1 << _TXID_BITS) - 1)) << (_TYPE_BITS + _TID_BITS))
        | ((torn & 1) << (_TYPE_BITS + _TID_BITS + _TXID_BITS))
        | ((ulog & ((1 << _ULOG_BITS) - 1)) << (_TYPE_BITS + _TID_BITS + _TXID_BITS + _TORN_BITS))
        | ((seq & ((1 << _SEQ_BITS) - 1)) << (_TYPE_BITS + _TID_BITS + _TXID_BITS + _TORN_BITS + _ULOG_BITS))
    )
    if entry_type is EntryType.COMMIT:
        meta1 = record.timestamp & ((1 << 63) - 1)
    else:
        meta1 = (record.addr & ((1 << _ADDR_BITS) - 1)) | (
            (record.dirty_mask & ((1 << _MASK_BITS) - 1)) << _ADDR_BITS
        )
    return [mask_word(meta0), mask_word(meta1)]


@dataclass(frozen=True)
class ParsedMeta:
    """Decoded metadata words, as the recovery routine sees them."""

    type: EntryType
    tid: int
    txid: int
    torn: int
    ulog_counter: int
    seq: int
    addr: int
    dirty_mask: int
    timestamp: int


def unpack_meta_words(meta0: int, meta1: int) -> ParsedMeta:
    """Inverse of :func:`pack_meta_words`."""
    type_value = meta0 & ((1 << _TYPE_BITS) - 1)
    try:
        entry_type = EntryType(type_value)
    except ValueError:
        raise ValueError("invalid entry type %d" % type_value)
    shift = _TYPE_BITS
    tid = (meta0 >> shift) & ((1 << _TID_BITS) - 1)
    shift += _TID_BITS
    txid = (meta0 >> shift) & ((1 << _TXID_BITS) - 1)
    shift += _TXID_BITS
    torn = (meta0 >> shift) & 1
    shift += _TORN_BITS
    ulog = (meta0 >> shift) & ((1 << _ULOG_BITS) - 1)
    shift += _ULOG_BITS
    seq = (meta0 >> shift) & ((1 << _SEQ_BITS) - 1)
    if entry_type is EntryType.COMMIT:
        return ParsedMeta(entry_type, tid, txid, torn, ulog, seq, 0, 0, meta1)
    addr = meta1 & ((1 << _ADDR_BITS) - 1)
    mask = (meta1 >> _ADDR_BITS) & ((1 << _MASK_BITS) - 1)
    return ParsedMeta(entry_type, tid, txid, torn, ulog, seq, addr, mask, 0)


SEQ_MODULUS = 1 << _SEQ_BITS


def seq_follows(prev: int, current: int) -> bool:
    """True when ``current`` is the successor of ``prev`` mod 2^20."""
    return current == (prev + 1) % SEQ_MODULUS
