"""Crash recovery (paper section III-E).

The recovery routine reads only what survived in NVMM: the log region's
control block (durable head pointer) and the raw log slots.  It walks the
log from the head, validating each entry's torn bit and sequence number,
until the chain breaks — that is the crash-time tail.

Then, per the paper:

- default protocol: transactions with a commit record are *redone* (their
  redo data copied to the home locations, in commit order, each
  transaction's entries in log order); transactions without one are
  *undone* in reverse log order.
- delay-persistence protocol: a committed transaction is *persisted* only
  if its commit record's ulog counter matches the number of its redo
  entries appearing after the record; the first non-persisted commit makes
  every later commit non-persisted too (transactions must persist in
  commit order).  Persisted transactions are redone, everything else is
  undone.

With ``verify_decode=True`` every applied log word is additionally pushed
through the SLDE/CRADE decode path (DLDC words decode against their base
word) and checked against the stored logical value — exercising the read
path of Figure 10.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.common.bitops import WORD_BYTES
from repro.common.errors import RecoveryError
from repro.logging_hw.entries import EntryType, ParsedMeta, unpack_meta_words
from repro.logging_hw.region import CONTROL_SLOTS, MAX_ENTRY_SLOTS, LogRegion
from repro.memory.controller import MemoryController


@dataclass(frozen=True)
class ScannedRecord:
    """One log entry as found in NVMM during the recovery scan."""

    position: int          # scan order within its region
    offset: int            # slot offset in the region
    meta: ParsedMeta
    data_words: Tuple[int, ...]   # (undo, redo) / (redo,) / ()
    region_base: int = 0   # base address of the region it came from

    @property
    def undo(self) -> Optional[int]:
        if self.meta.type in (EntryType.UNDO_REDO, EntryType.UNDO):
            return self.data_words[0]
        return None

    @property
    def redo(self) -> Optional[int]:
        if self.meta.type is EntryType.UNDO_REDO:
            return self.data_words[1]
        if self.meta.type is EntryType.REDO:
            return self.data_words[0]
        return None


@dataclass
class RecoveredState:
    """Summary of one recovery run."""

    records: List[ScannedRecord] = field(default_factory=list)
    committed_txids: Set[int] = field(default_factory=set)
    persisted_txids: Set[int] = field(default_factory=set)
    redone_words: int = 0
    undone_words: int = 0
    decode_verified_words: int = 0


def scan_log(
    controller: MemoryController, region_base: int, region_size: int
) -> List[ScannedRecord]:
    """Walk the log region in NVMM from the durable head to the tail."""
    array = controller.nvm.array
    n_slots = region_size // WORD_BYTES
    head, head_seq, head_parity = LogRegion.read_control(controller, region_base)
    if not CONTROL_SLOTS <= head <= n_slots:
        raise RecoveryError("corrupt control block: head=%d" % head)

    def slot_addr(offset: int) -> int:
        return region_base + offset * WORD_BYTES

    records: List[ScannedRecord] = []
    offset, parity, expected_seq = head, head_parity, head_seq
    wrapped = False
    while True:
        if n_slots - offset < 2:
            if wrapped:
                break
            offset, parity, wrapped = CONTROL_SLOTS, parity ^ 1, True
        meta0 = array.read_logical(slot_addr(offset))
        meta1 = array.read_logical(slot_addr(offset + 1))
        try:
            meta = unpack_meta_words(meta0, meta1)
        except ValueError:
            meta = None
        valid = (
            meta is not None
            and meta.torn == parity
            and meta.seq == expected_seq % (1 << 20)
            and offset + meta.type.n_slots <= n_slots
        )
        if not valid:
            # Either the tail, or the producer wrapped early because the
            # next entry did not fit before the end of the region.
            if not wrapped and n_slots - offset < MAX_ENTRY_SLOTS:
                offset, parity, wrapped = CONTROL_SLOTS, parity ^ 1, True
                continue
            break
        data = tuple(
            array.read_logical(slot_addr(offset + 2 + i))
            for i in range(meta.type.n_data_words)
        )
        records.append(
            ScannedRecord(len(records), offset, meta, data, region_base)
        )
        offset += meta.type.n_slots
        expected_seq += 1
        if len(records) > n_slots:
            raise RecoveryError("log scan did not terminate")
    return records


def _persisted_prefix(records: List[ScannedRecord], commits: List[ScannedRecord]) -> Set[int]:
    """Delay-persistence: committed txids whose redo data all made it.

    ``commits`` arrive in commit (timestamp) order; a transaction's redo
    entries always live in its own thread's region, so the post-commit
    check compares positions within that region.
    """
    redo_records: Dict[int, List[ScannedRecord]] = {}
    for r in records:
        if r.meta.type is EntryType.REDO:
            redo_records.setdefault(r.meta.txid, []).append(r)
    persisted: Set[int] = set()
    for commit in commits:
        txid = commit.meta.txid
        after = sum(
            1
            for r in redo_records.get(txid, ())
            if r.region_base == commit.region_base and r.position > commit.position
        )
        if after != commit.meta.ulog_counter:
            break  # this and every later commit are non-persisted
        persisted.add(txid)
    return persisted


def _verify_decode(controller: MemoryController, record: ScannedRecord) -> int:
    """Run the stored slots through the codec read path; returns words checked."""
    module = controller.nvm
    checked = 0
    region_base = record.region_base
    base_offset = record.offset
    if record.meta.type is EntryType.UNDO_REDO:
        undo_addr = region_base + (base_offset + 2) * WORD_BYTES
        redo_addr = region_base + (base_offset + 3) * WORD_BYTES
        # Each side's base word for DLDC is the other side (the
        # never-both-DLDC rule guarantees one side is self-contained).
        module.decode_word(undo_addr, base_word=record.redo)
        module.decode_word(redo_addr, base_word=record.undo)
        checked += 2
    elif record.meta.type in (EntryType.REDO, EntryType.UNDO):
        data_addr = region_base + (base_offset + 2) * WORD_BYTES
        # DLDC-encoded log data reconstruct their clean bytes from the
        # in-place word (identical on clean bytes by definition).
        in_place = controller.nvm.array.read_logical(record.meta.addr)
        module.decode_word(data_addr, base_word=in_place)
        checked += 1
    return checked


def recover(
    controller: MemoryController,
    region_base,
    region_size: int,
    delay_persistence: bool = False,
    verify_decode: bool = False,
) -> RecoveredState:
    """Recover the in-place data in NVMM after a crash.

    ``region_base`` is either a single region base address (centralized
    log) or a sequence of bases (distributed per-thread logs, section
    III-F); ``region_size`` is the per-region size.  With distributed
    logs, the commit-record timestamps order transactions globally.
    """
    if isinstance(region_base, int):
        region_bases = [region_base]
    else:
        region_bases = list(region_base)

    state = RecoveredState()
    for base in region_bases:
        state.records.extend(scan_log(controller, base, region_size))
    records = state.records

    # Global commit order: by timestamp (monotone across threads); within
    # one region this matches scan order.
    commits = sorted(
        (r for r in records if r.meta.type is EntryType.COMMIT),
        key=lambda r: r.meta.timestamp,
    )
    for r in commits:
        state.committed_txids.add(r.meta.txid)

    if delay_persistence:
        state.persisted_txids = _persisted_prefix(records, commits)
    else:
        state.persisted_txids = set(state.committed_txids)

    array = controller.nvm.array

    # Roll forward persisted transactions, in commit order; within one
    # transaction the per-region log order matches per-word program order.
    by_tx: Dict[int, List[ScannedRecord]] = {}
    for r in records:
        if r.meta.type is not EntryType.COMMIT:
            by_tx.setdefault(r.meta.txid, []).append(r)
    commit_timestamp = {r.meta.txid: r.meta.timestamp for r in commits}
    for commit in commits:
        txid = commit.meta.txid
        if txid not in state.persisted_txids:
            continue
        for r in by_tx.get(txid, ()):
            if r.redo is None:
                # Undo-only entries carry nothing to roll forward; the
                # committed data persisted in place before the commit.
                continue
            if verify_decode:
                state.decode_verified_words += _verify_decode(controller, r)
            array.write_logical(r.meta.addr, r.redo)
            state.redone_words += 1

    # Roll back everything else, youngest transaction first (committed
    # order by timestamp, in-flight transactions after all committed ones,
    # ordered by txid — begin order in this machine).
    undo_records = [
        r
        for r in records
        if r.meta.type in (EntryType.UNDO_REDO, EntryType.UNDO)
        and r.meta.txid not in state.persisted_txids
    ]
    undo_records.sort(
        key=lambda r: (
            commit_timestamp.get(r.meta.txid, float("inf")),
            r.meta.txid,
            r.position,
        )
    )
    for r in reversed(undo_records):
        if verify_decode:
            state.decode_verified_words += _verify_decode(controller, r)
        array.write_logical(r.meta.addr, r.undo)
        state.undone_words += 1

    return state
