"""Hardware logging designs (paper sections II, III and V).

- :mod:`repro.logging_hw.entries` — log entry / commit record formats
  (Figure 7) and their packing into 64-bit log-region words.
- :mod:`repro.logging_hw.region` — the single-consumer single-producer
  Lamport circular log region with torn bits and durable head pointer.
- :mod:`repro.logging_hw.buffers` — the volatile FIFO log buffers with
  coalescing, age-based eager eviction and silent-entry dropping.
- :mod:`repro.logging_hw.fwb` — the FWB undo+redo baseline (Ogleari et
  al., HPCA 2018), the paper's state-of-the-art comparison point.
- :mod:`repro.logging_hw.morlog` — morphable logging: eager undo / lazy
  redo write-back, the Figure 8 state machine, and both commit protocols.
- :mod:`repro.logging_hw.recovery` — crash recovery for both protocols.
"""

from repro.logging_hw.entries import CommitRecord, EntryType, LogEntry
from repro.logging_hw.region import LogRegion
from repro.logging_hw.buffers import BufferedEntry, LogBuffer
from repro.logging_hw.base import HardwareLogger, TransactionInfo
from repro.logging_hw.fwb import FwbLogger
from repro.logging_hw.morlog import MorLogLogger
from repro.logging_hw.undo_only import UndoOnlyLogger
from repro.logging_hw.redo_only import RedoOnlyLogger
from repro.logging_hw.recovery import RecoveredState, recover

__all__ = [
    "CommitRecord",
    "EntryType",
    "LogEntry",
    "LogRegion",
    "BufferedEntry",
    "LogBuffer",
    "HardwareLogger",
    "TransactionInfo",
    "FwbLogger",
    "MorLogLogger",
    "UndoOnlyLogger",
    "RedoOnlyLogger",
    "RecoveredState",
    "recover",
]
