"""Copy-on-write paging persistence (the Logging-vs-Paging baseline).

On the first store a transaction makes to a page, the whole page's home
image is copied to a freshly allocated shadow frame, line by line through
the NVMM data-write path, and a page-table entry validating the shadow is
persisted (see :mod:`repro.memory.pagetable` for the durable layout and
the undo-style shadowing rationale).  After that, stores to the page cost
nothing extra — the page-granularity copy *is* the log, which is exactly
the write-amplification tradeoff this baseline exists to measure against
word-granularity logging under small transactions.

Commit forces the transaction's dirty lines back (home pages now hold the
new image), then atomically flips the mapping: the ``page-flip`` crash
point fires and the commit record persists.  Recovery copies the shadow
frames of uncommitted transactions back over their home pages.

Page-table entries retire through a durable watermark advanced at every
force-write-back scan — never past an open transaction's oldest slot, so
a live shadow is always above the watermark.  Like InCLL, the design
needs the fwb-scan truncation horizon (a commit record must outlive the
watermark lag) and rejects ``tx-table`` truncation.
"""

from typing import Dict, List, Optional, Set, Tuple

from repro.cache.cacheline import CacheLine
from repro.common.bitops import WORD_BYTES, WORDS_PER_LINE
from repro.common.config import SystemConfig
from repro.common.errors import ConfigError
from repro.common.stats import StatGroup
from repro.logging_hw.base import HardwareLogger, TransactionInfo
from repro.logging_hw.entries import CommitRecord, EntryType, ParsedMeta
from repro.logging_hw.recovery import RecoveredState, ScannedRecord
from repro.logging_hw.region import LogRegion
from repro.memory.controller import MemoryController
from repro.memory.pagetable import PageTable, paging_aux_base, unpack_pte_header


class PagingLogger(HardwareLogger):
    """Shadow-page copy-on-write with an atomic mapping flip at commit."""

    name = "paging"

    def __init__(
        self,
        config: SystemConfig,
        controller: MemoryController,
        region: LogRegion,
        stats: Optional[StatGroup] = None,
    ) -> None:
        super().__init__(config, controller, region, stats)
        if config.logging.truncation == "tx-table":
            raise ConfigError(
                "CoW paging's watermark validity needs the fwb-scan "
                "truncation horizon; tx-table frees commit records before "
                "their page-table entries retire"
            )
        self.pagetable = PageTable(controller, config)
        self._page_bytes = config.logging.page_bytes
        # txid -> {page_index: slot index} of pages already shadowed.
        self._tx_pages: Dict[int, Dict[int, int]] = {}
        # (tid, txid) -> line bases for the forced write-back at commit.
        self._tx_lines: Dict[Tuple[int, int], Set[int]] = {}
        self._committed: Set[int] = set()

    # ------------------------------------------------------------------
    # Hot path
    # ------------------------------------------------------------------

    def _copy_page_to_shadow(
        self, tx: TransactionInfo, page_index: int, now_ns: float
    ) -> float:
        """First touch of a page: snapshot its home image to a shadow."""
        array = self.controller.nvm.array
        page_base = self.config.nvmm_base + page_index * self._page_bytes
        slot = self.pagetable.allocate()
        shadow = self.pagetable.shadow_addr(slot)
        line_bytes = self.config.caches.line_bytes
        for line_off in range(0, self._page_bytes, line_bytes):
            words = [
                array.read_logical(page_base + line_off + i * WORD_BYTES)
                for i in range(WORDS_PER_LINE)
            ]
            result = self.controller.nvm.write_data_line(
                shadow + line_off, words, now_ns
            )
            now_ns += result.schedule.stall_ns
        # The header validates the shadow, so it persists last: a crash
        # mid-copy leaves a dead slot and an untouched home page.
        if self.crash_plan is not None:
            self.crash_plan.fire(
                "page-table-write", txid=tx.txid, addr=self.pagetable.slot_addr(slot)
            )
        now_ns = self.pagetable.persist_header(
            slot, tx.tid, tx.txid, page_index, now_ns
        )
        self._tx_pages.setdefault(tx.txid, {})[page_index] = slot
        self.stats.add("shadow_page_copies")
        self.stats.add(
            "shadow_lines_written", self._page_bytes // line_bytes
        )
        if self.tracer is not None:
            self.tracer.emit(
                "word-state", "word-state", now_ns,
                core=tx.tid, txid=tx.txid, addr=page_base,
                **{"from": "CLEAN", "to": "SHADOWED"},
            )
        return now_ns

    def on_store(
        self,
        tx: TransactionInfo,
        line: CacheLine,
        word_index: int,
        old_word: int,
        new_word: int,
        now_ns: float,
    ) -> float:
        page_index = (line.base_addr - self.config.nvmm_base) // self._page_bytes
        if page_index not in self._tx_pages.get(tx.txid, ()):
            now_ns = self._copy_page_to_shadow(tx, page_index, now_ns)
        self._tx_lines.setdefault((tx.tid, tx.txid), set()).add(line.base_addr)
        return now_ns

    def commit_tx(self, tx: TransactionInfo, now_ns: float) -> float:
        last_accept = now_ns
        for base in sorted(self._tx_lines.pop((tx.tid, tx.txid), ())):
            if self.hierarchy is None:
                break
            if self.crash_plan is not None:
                self.crash_plan.fire("forced-writeback", txid=tx.txid, addr=base)
            done = self.hierarchy.write_back_line(base, now_ns)
            last_accept = max(last_accept, done)
            self.stats.add("forced_data_write_backs")
        # The commit record is the atomic mapping flip: before it, the
        # shadows are authoritative (recovery restores them); after it,
        # the home pages are.
        if self.crash_plan is not None:
            self.crash_plan.fire("page-flip", txid=tx.txid)
        record = CommitRecord(
            tid=tx.tid, txid=tx.txid, timestamp=self.next_commit_timestamp()
        )
        result = self.persist_commit(record, max(now_ns, last_accept))
        now_ns = max(now_ns, last_accept, result.schedule.accept_ns)
        self._committed.add(tx.txid)
        self._tx_pages.pop(tx.txid, None)
        tx.committed = True
        tx.commit_ns = now_ns + self._commit_overhead_ns
        return tx.commit_ns

    def tick(self, now_ns: float) -> float:
        return now_ns

    def drain(self, now_ns: float) -> float:
        return now_ns

    def on_fwb_scan(self, now_ns: float) -> float:
        """Advance the watermark past every closed transaction's slots.

        Slot allocation is monotone and transactions are serialized, so
        the oldest slot of any open transaction bounds how far W may
        move; with no transaction open it jumps to the allocation head.
        """
        open_slots = [
            min(pages.values())
            for txid, pages in self._tx_pages.items()
            if pages and txid not in self._committed
        ]
        target = min(open_slots) if open_slots else self.pagetable.alloc
        if target > self.pagetable.watermark:
            if self.crash_plan is not None:
                self.crash_plan.fire(
                    "page-table-write", addr=self.pagetable.control_addr
                )
            now_ns = self.pagetable.persist_watermark(target, now_ns)
            self.stats.add("watermark_advances")
        return now_ns

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def recover_design_state(self, state: RecoveredState) -> None:
        recover_paging(self.controller, self.config, state)


def recover_paging(
    controller: MemoryController, config: SystemConfig, state: RecoveredState
) -> None:
    """Copy live shadow frames back over uncommitted home pages.

    Walks PTE slots from 0 until the first invalid header (allocation is
    monotone, so that is the crash-time allocation head); restores the
    youngest live shadow first.  Reads only durable state and writes home
    words through ``write_logical`` exclusively.
    """
    array = controller.nvm.array
    table = PageTable(controller, config)
    watermark = array.read_logical(table.control_addr)
    live: List[Tuple[int, int, int, int]] = []  # (slot, tid, txid, page)
    slot = 0
    while True:
        valid, tid, txid = unpack_pte_header(array.read_logical(table.slot_addr(slot)))
        if not valid:
            break
        page_index = array.read_logical(table.slot_addr(slot) + WORD_BYTES)
        if slot >= watermark and txid not in state.committed_txids:
            live.append((slot, tid, txid, page_index))
        slot += 1
    page_words = config.logging.page_bytes // WORD_BYTES
    for slot, tid, txid, page_index in reversed(live):
        shadow = table.shadow_addr(slot)
        page_base = config.nvmm_base + page_index * config.logging.page_bytes
        for i in range(page_words):
            value = array.read_logical(shadow + i * WORD_BYTES)
            home = page_base + i * WORD_BYTES
            array.write_logical(home, value)
            state.undone_words += 1
            meta = ParsedMeta(
                type=EntryType.UNDO,
                tid=tid,
                txid=txid,
                torn=0,
                ulog_counter=0,
                seq=0,
                addr=home,
                dirty_mask=0xFF,
                timestamp=0,
            )
            state.records.append(
                ScannedRecord(
                    position=len(state.records),
                    offset=slot * page_words + i,
                    meta=meta,
                    data_words=(value,),
                    region_base=paging_aux_base(config),
                )
            )
