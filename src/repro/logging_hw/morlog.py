"""MorLog: morphable hardware logging (paper section III and Figure 11).

The eager-undo / lazy-redo write-back policy over two buffers plus the L1
word-state machine of Figure 8:

- first update to a word in a transaction → undo+redo entry into the
  undo+redo buffer (eagerly evicted within N cycles), word ``DIRTY``;
- further updates while the entry is still buffered coalesce in place
  (``DIRTY`` → ``DIRTY``);
- once the entry persists the word turns ``URLOG``; the next same-
  transaction update buffers the redo *in the L1 line itself*
  (``URLOG`` → ``ULOG``), accumulating a per-byte dirty flag;
- the buffered redo becomes a redo entry when the line leaves the L1 or a
  new transaction touches it; the redo buffer writes it lazily;
- a redo entry superseded by a *newer undo+redo entry of the same
  transaction and word* is discarded (necessary for recovery-order
  correctness, see DESIGN.md); at LLC write-back the matching redo entry
  is persisted (default) or discarded (``unsafe_llc_redo_discard``, the
  paper's literal behaviour);
- commit either persists everything (default protocol) or commits
  instantly and leaves persistence to the ulog-counter machinery
  (delay-persistence protocol, section III-C).

With SLDE enabled, stores that do not change the word's value leave the
state machine untouched entirely (Figure 11, "Write C1").
"""

from typing import Dict, List, Optional, Set, Tuple

from repro.cache.cacheline import CacheLine, LogState
from repro.common.bitops import WORD_BYTES, dirty_byte_mask
from repro.common.config import SystemConfig
from repro.common.stats import StatGroup
from repro.logging_hw.base import HardwareLogger, TransactionInfo
from repro.logging_hw.buffers import LogBuffer
from repro.logging_hw.entries import CommitRecord, EntryType, LogEntry
from repro.logging_hw.region import LogRegion
from repro.memory.controller import MemoryController
from repro.nvm.module import WriteResult


class MorLogLogger(HardwareLogger):
    """Morphable logging with optional delay-persistence commit."""

    name = "morlog"

    def __init__(
        self,
        config: SystemConfig,
        controller: MemoryController,
        region: LogRegion,
        stats: StatGroup = None,
    ) -> None:
        super().__init__(config, controller, region, stats)
        log_cfg = config.logging
        self.delay_persistence = log_cfg.delay_persistence
        self.unsafe_llc_redo_discard = log_cfg.unsafe_llc_redo_discard
        self.ur_buffer = LogBuffer(
            "undo_redo_buffer",
            log_cfg.undo_redo_buffer_entries,
            self._evict_age_ns,
            drop_silent=False,
            stats=self.stats,
        )
        self.redo_buffer = LogBuffer(
            "redo_buffer",
            max(log_cfg.redo_buffer_entries, 1),
            None,  # redo data have no ordering deadline (section III-B)
            drop_silent=self.use_dirty_flags,
            stats=self.stats,
        )
        self._redo_enabled = log_cfg.redo_buffer_entries > 0
        # (tid, txid) -> L1 line bases holding live log state for that tx.
        self._tx_lines: Dict[Tuple[int, int], Set[int]] = {}
        # (tid, txid) -> redo-buffer keys of non-temporal stores, which
        # must be persisted ahead of the commit record (section III-F).
        self._nt_keys: Dict[Tuple[int, int], Set[Tuple[int, int, int]]] = {}

    # ------------------------------------------------------------------
    # Store path: the Figure 8 state machine
    # ------------------------------------------------------------------

    def on_store(
        self,
        tx: TransactionInfo,
        line: CacheLine,
        word_index: int,
        old_word: int,
        new_word: int,
        now_ns: float,
    ) -> float:
        if line.txid is not None and (line.txid, line.tid) != (tx.txid, tx.tid):
            # The line still carries another transaction's state: close it
            # out first (one TID/TxID per line, Figure 7).
            now_ns = self._close_out_line(line, now_ns)

        mask_delta = dirty_byte_mask(old_word, new_word)
        state = line.state(word_index)

        if state is LogState.CLEAN:
            if self.use_dirty_flags and mask_delta == 0:
                # Silent store: value unchanged, nothing to log (Figure 11).
                self.stats.add("silent_stores")
                return now_ns
            return self._first_update(tx, line, word_index, old_word, new_word, mask_delta, now_ns)

        if state is LogState.DIRTY:
            entry = LogEntry(
                type=EntryType.UNDO_REDO,
                tid=tx.tid,
                txid=tx.txid,
                addr=line.base_addr + word_index * WORD_BYTES,
                undo=old_word,
                redo=new_word,
                dirty_mask=mask_delta if self.use_dirty_flags else 0xFF,
            )
            if entry.key in self.ur_buffer:
                self.ur_buffer.insert(entry, now_ns)  # coalesces in place
                line.word_dirty_flags[word_index] |= mask_delta
                return now_ns
            # The entry persisted between state update and now (defensive;
            # eviction updates states synchronously, so treat as URLOG).
            line.set_state(word_index, LogState.URLOG)
            state = LogState.URLOG

        if state is LogState.URLOG:
            if self.use_dirty_flags and mask_delta == 0:
                self.stats.add("silent_stores")
                return now_ns
            # Buffer the redo in place in the L1 line (the store itself
            # writes the new value); the flag restarts relative to the
            # last logged redo (Figure 11(c)).
            line.set_state(word_index, LogState.ULOG)
            line.word_dirty_flags[word_index] = mask_delta if self.use_dirty_flags else 0xFF
            if self.tracer is not None:
                self.tracer.emit(
                    "word-state",
                    "word-state",
                    now_ns,
                    core=tx.tid,
                    txid=tx.txid,
                    addr=line.base_addr + word_index * WORD_BYTES,
                    **{"from": "URLOG", "to": "ULOG"}
                )
            return now_ns

        # ULOG: keep accumulating in place.
        line.word_dirty_flags[word_index] |= mask_delta if self.use_dirty_flags else 0xFF
        return now_ns

    def _first_update(
        self,
        tx: TransactionInfo,
        line: CacheLine,
        word_index: int,
        old_word: int,
        new_word: int,
        mask_delta: int,
        now_ns: float,
    ) -> float:
        addr = line.base_addr + word_index * WORD_BYTES
        entry = LogEntry(
            type=EntryType.UNDO_REDO,
            tid=tx.tid,
            txid=tx.txid,
            addr=addr,
            undo=old_word,
            redo=new_word,
            dirty_mask=mask_delta if self.use_dirty_flags else 0xFF,
        )
        # A newer undo+redo entry supersedes any buffered redo entry for
        # the same word and transaction; dropping it keeps per-word log
        # order monotone (recovery replays in log order).
        if self._redo_enabled and self.redo_buffer.pop_key(entry.key) is not None:
            self.stats.add("redo_superseded_discards")
        evicted = self.ur_buffer.insert(entry, now_ns)
        now_ns = self._persist_ur_entries(evicted, now_ns)
        line.tid = tx.tid
        line.txid = tx.txid
        line.set_state(word_index, LogState.DIRTY)
        line.word_dirty_flags[word_index] = mask_delta
        self._tx_lines.setdefault((tx.tid, tx.txid), set()).add(line.base_addr)
        if self.tracer is not None:
            self.tracer.emit(
                "log-create",
                "log",
                now_ns,
                core=tx.tid,
                txid=tx.txid,
                addr=addr,
                entry="undo-redo",
            )
            self.tracer.emit(
                "word-state",
                "word-state",
                now_ns,
                core=tx.tid,
                txid=tx.txid,
                addr=addr,
                **{"from": "CLEAN", "to": "DIRTY"}
            )
        return now_ns

    # ------------------------------------------------------------------
    # Buffer eviction plumbing
    # ------------------------------------------------------------------

    def _persist_ur_entries(self, entries: List[LogEntry], now_ns: float) -> float:
        """Persist undo+redo entries and flip their words to URLOG."""
        for entry in entries:
            result = self.persist_entry(entry, now_ns)
            now_ns += result.schedule.stall_ns
        return now_ns

    def _entry_persisted(self, entry: LogEntry, result: WriteResult, now_ns: float) -> None:
        if entry.type is not EntryType.UNDO_REDO:
            return
        line = self._lookup_l1_line(entry.tid, entry.addr)
        if line is None or line.txid != entry.txid:
            return
        index = (entry.addr - line.base_addr) // WORD_BYTES
        if line.state(index) is LogState.DIRTY:
            line.set_state(index, LogState.URLOG)
            line.word_dirty_flags[index] = 0
            if self.tracer is not None:
                self.tracer.emit(
                    "word-state",
                    "word-state",
                    now_ns,
                    core=entry.tid,
                    txid=entry.txid,
                    addr=entry.addr,
                    **{"from": "DIRTY", "to": "URLOG"}
                )

    def _emit_redo(self, tid: int, txid: int, addr: int, value: int, mask: int, now_ns: float) -> float:
        if self.crash_plan is not None:
            # A ULOG word's in-line redo data leave the L1 and become a
            # log entry here — the boundary the delay-persistence ulog
            # accounting depends on.
            self.crash_plan.fire("redo-drain", txid=txid, addr=addr)
        if self.tracer is not None:
            self.tracer.emit(
                "log-create",
                "log",
                now_ns,
                core=tid,
                txid=txid,
                addr=addr,
                entry="redo",
            )
        entry = LogEntry(
            type=EntryType.REDO,
            tid=tid,
            txid=txid,
            addr=addr,
            redo=value,
            dirty_mask=mask if self.use_dirty_flags else 0xFF,
        )
        if not self._redo_enabled:
            result = self.persist_entry(entry, now_ns)
            return now_ns + result.schedule.stall_ns
        evicted = self.redo_buffer.insert(entry, now_ns)
        for victim in evicted:
            result = self.persist_entry(victim, now_ns)
            now_ns += result.schedule.stall_ns
        return now_ns

    def _close_out_line(self, line: CacheLine, now_ns: float) -> float:
        """Retire all log state another transaction left on this line."""
        tid, txid = line.tid, line.txid
        for index in range(len(line.words)):
            state = line.state(index)
            if state is LogState.DIRTY:
                key = (tid, txid, line.base_addr + index * WORD_BYTES)
                pending = self.ur_buffer.pop_key(key)
                if pending is not None:
                    now_ns = self._persist_ur_entries([pending], now_ns)
            elif state is LogState.ULOG:
                now_ns = self._emit_redo(
                    tid,
                    txid,
                    line.base_addr + index * WORD_BYTES,
                    line.word(index),
                    line.word_dirty_flags[index],
                    now_ns,
                )
        line.clear_log_state()
        lines = self._tx_lines.get((tid, txid))
        if lines is not None:
            lines.discard(line.base_addr)
        return now_ns

    # ------------------------------------------------------------------
    # Cache callbacks
    # ------------------------------------------------------------------

    def on_l1_evict(self, core: int, line: CacheLine, now_ns: float) -> float:
        if line.txid is None:
            return now_ns
        return self._close_out_line(line, now_ns)

    def before_llc_write_back(self, line_addr: int, now_ns: float) -> float:
        line_bytes = self.config.caches.line_bytes
        # Write-ahead ordering: undo data for this line must be in NVMM
        # before the in-place write (only FWB-scan write-backs of live L1
        # lines can still have buffered entries here).
        pending = self.ur_buffer.pop_addr_range(line_addr, line_bytes)
        if pending:
            self.stats.add("wal_forced_flushes", len(pending))
            if self.tracer is not None:
                self.tracer.emit(
                    "wal-flush",
                    "log",
                    now_ns,
                    addr=line_addr,
                    entries=len(pending),
                )
            now_ns = self._persist_ur_entries(pending, now_ns)
        if not self._redo_enabled:
            return now_ns
        # The in-place data are about to persist; the buffered redo data
        # for this line are now redundant.
        stale = self.redo_buffer.pop_addr_range(line_addr, line_bytes)
        if stale:
            if self.unsafe_llc_redo_discard:
                self.stats.add("redo_llc_discards", len(stale))
            else:
                self.stats.add("redo_llc_flushes", len(stale))
                for entry in stale:
                    result = self.persist_entry(entry, now_ns)
                    now_ns += result.schedule.stall_ns
        return now_ns

    # ------------------------------------------------------------------
    # Non-temporal stores (section III-F)
    # ------------------------------------------------------------------

    def on_nt_store(self, tx, addr: int, value: int, now_ns: float) -> float:
        from repro.logging_hw.entries import EntryType, LogEntry

        entry = LogEntry(
            type=EntryType.REDO,
            tid=tx.tid,
            txid=tx.txid,
            addr=addr,
            redo=value,
            dirty_mask=0xFF,
        )
        self.stats.add("nt_stores")
        if not self._redo_enabled:
            result = self.persist_entry(entry, now_ns)
            return now_ns + result.schedule.stall_ns
        self._nt_keys.setdefault((tx.tid, tx.txid), set()).add(entry.key)
        for victim in self.redo_buffer.insert(entry, now_ns):
            result = self.persist_entry(victim, now_ns)
            now_ns += result.schedule.stall_ns
        return now_ns

    def _flush_nt_entries(self, tx: TransactionInfo, now_ns: float) -> float:
        """Persist buffered non-temporal redo entries before the commit
        record, so recovery never misses a committed NT store."""
        keys = self._nt_keys.get((tx.tid, tx.txid))
        if keys and self.crash_plan is not None:
            self.crash_plan.fire("nt-flush", txid=tx.txid)
        if keys and self.tracer is not None:
            self.tracer.emit(
                "nt-flush",
                "log",
                now_ns,
                core=tx.tid,
                txid=tx.txid,
                entries=len(keys),
            )
        for key in self._nt_keys.pop((tx.tid, tx.txid), ()):
            entry = self.redo_buffer.pop_key(key)
            if entry is not None:
                result = self.persist_entry(entry, now_ns)
                now_ns += result.schedule.stall_ns
        return now_ns

    # ------------------------------------------------------------------
    # Commit protocols
    # ------------------------------------------------------------------

    def commit_tx(self, tx: TransactionInfo, now_ns: float) -> float:
        now_ns = self._flush_nt_entries(tx, now_ns)
        if self.delay_persistence:
            return self._commit_delay_persistence(tx, now_ns)
        return self._commit_persistent(tx, now_ns)

    def _commit_persistent(self, tx: TransactionInfo, now_ns: float) -> float:
        """Default protocol: commit implies both atomicity and persistence."""
        last_accept = now_ns
        for entry in self.ur_buffer.pop_tx(tx.tid, tx.txid):
            result = self.persist_entry(entry, now_ns)
            now_ns += result.schedule.stall_ns
            last_accept = max(last_accept, result.schedule.accept_ns)
        for base in sorted(self._tx_lines.pop((tx.tid, tx.txid), ())):
            line = self._lookup_l1_line(tx.tid, base)
            if line is None or line.txid != tx.txid:
                continue
            for index in line.words_in_state(LogState.ULOG):
                now_ns = self._emit_redo(
                    tx.tid,
                    tx.txid,
                    base + index * WORD_BYTES,
                    line.word(index),
                    line.word_dirty_flags[index],
                    now_ns,
                )
            line.clear_log_state()
        for entry in self.redo_buffer.pop_tx(tx.tid, tx.txid):
            result = self.persist_entry(entry, now_ns)
            now_ns += result.schedule.stall_ns
            last_accept = max(last_accept, result.schedule.accept_ns)
        record = CommitRecord(
            tid=tx.tid, txid=tx.txid, timestamp=self.next_commit_timestamp()
        )
        result = self.persist_commit(record, now_ns)
        now_ns = max(now_ns, last_accept, result.schedule.accept_ns)
        tx.committed = True
        tx.commit_ns = now_ns + self._commit_overhead_ns
        return tx.commit_ns

    def _commit_delay_persistence(self, tx: TransactionInfo, now_ns: float) -> float:
        """Delay-persistence protocol (section III-C): instant commit.

        Undo data already persist in issue order (FIFO undo+redo buffer),
        so atomicity holds at any crash point; the commit record carries
        the ulog counter so recovery can tell whether the transaction's
        redo data all reached the log.
        """
        for entry in self.ur_buffer.pop_tx(tx.tid, tx.txid):
            result = self.persist_entry(entry, now_ns)
            now_ns += result.schedule.stall_ns
        ulog = 0
        for base in self._tx_lines.pop((tx.tid, tx.txid), ()):
            line = self._lookup_l1_line(tx.tid, base)
            if line is None or line.txid != tx.txid:
                continue
            ulog += len(line.words_in_state(LogState.ULOG))
            # The line keeps its state; redo entries are created when a
            # new transaction touches it or it leaves the L1.
        record = CommitRecord(
            tid=tx.tid,
            txid=tx.txid,
            ulog_counter=ulog,
            timestamp=self.next_commit_timestamp(),
        )
        result = self.persist_commit(record, now_ns)
        now_ns += result.schedule.stall_ns
        self.stats.add("dp_ulog_total", ulog)
        tx.committed = True
        tx.commit_ns = now_ns + self._commit_overhead_ns
        return tx.commit_ns

    # ------------------------------------------------------------------
    # Background work
    # ------------------------------------------------------------------

    def tick(self, now_ns: float) -> float:
        expired = self.ur_buffer.pop_expired(now_ns)
        return self._persist_ur_entries(expired, now_ns)

    def drain(self, now_ns: float) -> float:
        now_ns = self._persist_ur_entries(self.ur_buffer.pop_all(), now_ns)
        if self.hierarchy is not None:
            for core, l1 in enumerate(self.hierarchy.l1s):
                for line in list(l1.iter_lines()):
                    if line.txid is not None:
                        now_ns = self._close_out_line(line, now_ns)
        for entry in self.redo_buffer.pop_all():
            result = self.persist_entry(entry, now_ns)
            now_ns += result.schedule.stall_ns
        return now_ns
