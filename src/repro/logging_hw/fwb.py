"""The FWB undo+redo hardware logging baseline.

FWB ("steal but no force", Ogleari et al. HPCA 2018) is the paper's
state-of-the-art comparison point (section VI-A):

- every transactional store creates an undo+redo log entry (undo read from
  the L1 line, redo from the store itself);
- entries coalesce inside a single volatile FIFO log buffer and are
  written to NVMM when the buffer fills or after N cycles, N below the
  minimum cache-traversal latency (the write-ahead guarantee);
- commit persists the transaction's remaining entries plus a commit
  record and waits for them to reach the persistence domain;
- in-place data steal/no-force: cache lines write back whenever the
  hierarchy pleases, and commit never waits for them.

The evaluated variants map to constructor arguments:

- ``FWB-CRADE``: ``eager=True``, 16-entry buffer, CRADE log codec;
- ``FWB-Unsafe``: ``eager=False``, 48-entry buffer (undo+redo + redo
  sizes) — entries may outlive the N-cycle bound, which is why the paper
  calls it unsafe;
- ``FWB-SLDE``: ``eager=True`` with the SLDE log codec, which adds dirty
  flags to buffer entries and drops completely-clean entries.
"""


from repro.cache.cacheline import CacheLine
from repro.common.bitops import dirty_byte_mask
from repro.common.config import SystemConfig
from repro.common.stats import StatGroup
from repro.logging_hw.base import HardwareLogger, TransactionInfo
from repro.logging_hw.buffers import LogBuffer
from repro.logging_hw.entries import CommitRecord, EntryType, LogEntry
from repro.logging_hw.region import LogRegion
from repro.memory.controller import MemoryController


class FwbLogger(HardwareLogger):
    """Single-buffer undo+redo logging per store."""

    name = "fwb"

    def __init__(
        self,
        config: SystemConfig,
        controller: MemoryController,
        region: LogRegion,
        stats: StatGroup = None,
        buffer_entries: int = None,
        eager: bool = True,
    ) -> None:
        super().__init__(config, controller, region, stats)
        if buffer_entries is None:
            buffer_entries = config.logging.undo_redo_buffer_entries
        self.eager = eager
        self.buffer = LogBuffer(
            "fwb_buffer",
            buffer_entries,
            self._evict_age_ns if eager else None,
            drop_silent=self.use_dirty_flags,
            stats=self.stats,
        )

    # ------------------------------------------------------------------
    # Hot path
    # ------------------------------------------------------------------

    def on_store(
        self,
        tx: TransactionInfo,
        line: CacheLine,
        word_index: int,
        old_word: int,
        new_word: int,
        now_ns: float,
    ) -> float:
        mask = dirty_byte_mask(old_word, new_word) if self.use_dirty_flags else 0xFF
        entry = LogEntry(
            type=EntryType.UNDO_REDO,
            tid=tx.tid,
            txid=tx.txid,
            addr=line.base_addr + word_index * 8,
            undo=old_word,
            redo=new_word,
            dirty_mask=mask,
        )
        if self.tracer is not None:
            self.tracer.emit(
                "log-create",
                "log",
                now_ns,
                core=tx.tid,
                txid=tx.txid,
                addr=entry.addr,
                entry="undo-redo",
            )
        evicted = self.buffer.insert(entry, now_ns)
        now_ns, _accept = self._persist_many(evicted, now_ns)
        return now_ns

    def commit_tx(self, tx: TransactionInfo, now_ns: float) -> float:
        entries = self.buffer.pop_tx(tx.tid, tx.txid)
        now_ns, last_accept = self._persist_many(entries, now_ns)
        record = CommitRecord(
            tid=tx.tid, txid=tx.txid, timestamp=self.next_commit_timestamp()
        )
        result = self.persist_commit(record, now_ns)
        # Undo+redo logging commits once all its log data are persistent
        # (Figure 1(e)); with ADR that is queue acceptance.
        now_ns = max(now_ns, last_accept, result.schedule.accept_ns)
        tx.committed = True
        tx.commit_ns = now_ns + self._commit_overhead_ns
        return tx.commit_ns

    def tick(self, now_ns: float) -> float:
        expired = self.buffer.pop_expired(now_ns)
        now_ns, _accept = self._persist_many(expired, now_ns)
        return now_ns

    def drain(self, now_ns: float) -> float:
        now_ns, _accept = self._persist_many(self.buffer.pop_all(), now_ns)
        return now_ns

    # ------------------------------------------------------------------
    # Cache callbacks (write-ahead ordering)
    # ------------------------------------------------------------------

    def before_llc_write_back(self, line_addr: int, now_ns: float) -> float:
        pending = self.buffer.pop_addr_range(line_addr, self.config.caches.line_bytes)
        if pending:
            if self.crash_plan is not None:
                # Write-ahead boundary: these entries must reach the log
                # before the in-place line write that triggered the flush.
                self.crash_plan.fire("wal-flush", addr=line_addr)
            self.stats.add("wal_forced_flushes", len(pending))
            if self.tracer is not None:
                self.tracer.emit(
                    "wal-flush",
                    "log",
                    now_ns,
                    addr=line_addr,
                    entries=len(pending),
                )
            now_ns, _accept = self._persist_many(pending, now_ns)
        return now_ns
