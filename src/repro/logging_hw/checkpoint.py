"""Periodic checkpointing with log compaction over the undo logger.

The tef-undolog line of systems compacts an append-only undo log by
periodically checkpointing live data and dropping every record the
checkpoint superseded.  Layered on :class:`UndoOnlyLogger`: after every
``checkpoint_interval_tx`` commits the logger takes a checkpoint — two
force-write-back scans push every dirty line into NVMM (the first scan
flags, the second writes back, so two passes persist everything) — and
then compacts the log, truncating every entry and commit record of the
transactions the checkpoint covered, *without* waiting for the run-loop's
two-scan truncation horizon.

That makes the recovery-time-vs-interval tradeoff measurable: a small
interval keeps the log short (recovery scans and rolls back almost
nothing, at the cost of checkpoint write bursts); a large interval leaves
the whole history live.  Recovery itself is unchanged from the undo-only
scheme — compaction only ever drops entries whose data the checkpoint
already persisted in place, which the oracle observes as
"committed-but-truncated implies applied".

Crash points: ``fwb-scan`` fires before each checkpoint scan (the same
boundary the run loop instruments) and ``log-compaction`` fires between
the scans and the truncation — the window where a crash leaves a
fully-checkpointed but not-yet-compacted log.
"""

from typing import Optional, Set

from repro.common.config import SystemConfig
from repro.common.stats import StatGroup
from repro.logging_hw.region import LogRegion
from repro.logging_hw.undo_only import UndoOnlyLogger
from repro.memory.controller import MemoryController


class CheckpointUndoLogger(UndoOnlyLogger):
    """Undo logging plus periodic checkpoint + log compaction."""

    name = "ckpt-undo"

    def __init__(
        self,
        config: SystemConfig,
        controller: MemoryController,
        region: LogRegion,
        stats: Optional[StatGroup] = None,
    ) -> None:
        super().__init__(config, controller, region, stats)
        self._interval = config.logging.checkpoint_interval_tx
        self._since_checkpoint = 0
        self._committed: Set[int] = set()

    def commit_tx(self, tx, now_ns: float) -> float:
        now_ns = super().commit_tx(tx, now_ns)
        self._committed.add(tx.txid)
        self._since_checkpoint += 1
        if self._interval and self._since_checkpoint >= self._interval:
            now_ns = self._checkpoint(now_ns)
        return now_ns

    def _checkpoint(self, now_ns: float) -> float:
        """Persist all dirty data, then drop the log entries it covers.

        Runs at a commit boundary, where no transaction is in flight —
        so every live log entry belongs to a committed transaction and
        the compaction can free the entire covered prefix.
        """
        self._since_checkpoint = 0
        self.stats.add("checkpoints")
        # Leftover buffered entries (none in the common case: commit just
        # flushed this transaction's) persist first — write-ahead holds.
        now_ns, _accept = self._persist_many(self.buffer.pop_all(), now_ns)
        if self.hierarchy is not None:
            for _ in range(2):
                if self.crash_plan is not None:
                    self.crash_plan.fire("fwb-scan")
                now_ns = self.hierarchy.force_write_back_scan(now_ns)
        covered = frozenset(self._committed)
        if self.crash_plan is not None:
            # Crash here: data fully checkpointed, log not yet compacted
            # — recovery must tolerate re-seeing the superseded entries.
            self.crash_plan.fire("log-compaction", covered=len(covered))
        freed = self.region.truncate(lambda e: e.txid in covered, now_ns)
        self.stats.add("checkpoint_compacted_entries", freed)
        if self.tracer is not None:
            self.tracer.emit(
                "checkpoint", "log", now_ns,
                compacted=freed, covered=len(covered),
            )
            self.tracer.emit(
                "word-state", "word-state", now_ns,
                **{"from": "ULOG", "to": "CKPT"},
            )
        return now_ns
