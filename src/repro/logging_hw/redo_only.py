"""Redo-only hardware logging (the ReDU/DHTM-style ablation baseline).

Figure 1(d) of the paper: redo logging lets a transaction commit without
persisting its updated data, but *in-place data must not be updated in
NVMM until all the transaction's redo data are persisted* — in fact, for
atomicity, not until the transaction commits at all (redo data cannot
undo a partial in-place update).  ReDU solves this by diverting evicted
lines of in-flight transactions into a DRAM cache; this logger models
that mechanism:

- per store: a redo entry coalesces in an eager FIFO buffer;
- a write-back of any line holding in-flight-transaction words is
  *diverted* into a DRAM stage (the hierarchy skips the NVMM write, and
  reads of staged lines are intercepted so the data stay coherent);
- commit: flush the transaction's redo entries, write the commit record,
  then release the transaction's staged lines to NVMM;
- recovery: committed transactions roll forward from the redo log;
  in-flight transactions need nothing — their data never touched NVMM.
"""

from typing import Dict, List, Set, Tuple

from repro.cache.cacheline import CacheLine
from repro.common.bitops import WORD_BYTES, dirty_byte_mask
from repro.common.config import SystemConfig
from repro.common.stats import StatGroup
from repro.logging_hw.base import HardwareLogger, TransactionInfo
from repro.logging_hw.buffers import LogBuffer
from repro.logging_hw.entries import CommitRecord, EntryType, LogEntry
from repro.logging_hw.region import LogRegion
from repro.memory.controller import MemoryController
from repro.memory.dram import DRAM_WRITE_NS


class RedoOnlyLogger(HardwareLogger):
    """Redo logging with a DRAM staging cache for in-flight write-backs."""

    name = "redo-only"

    def __init__(
        self,
        config: SystemConfig,
        controller: MemoryController,
        region: LogRegion,
        stats: StatGroup = None,
    ) -> None:
        super().__init__(config, controller, region, stats)
        self.buffer = LogBuffer(
            "redo_only_buffer",
            config.logging.undo_redo_buffer_entries
            + config.logging.redo_buffer_entries,
            self._evict_age_ns,
            drop_silent=self.use_dirty_flags,
            stats=self.stats,
        )
        # line base -> set of in-flight (tid, txid) with words on it.
        self._inflight_lines: Dict[int, Set[Tuple[int, int]]] = {}
        # (tid, txid) -> line bases it wrote.
        self._tx_lines: Dict[Tuple[int, int], Set[int]] = {}
        # The DRAM stage: line base -> words (diverted write-backs).
        self.stage: Dict[int, List[int]] = {}
        controller.read_interceptor = self._read_staged

    # ------------------------------------------------------------------
    # DRAM stage
    # ------------------------------------------------------------------

    def _read_staged(self, addr: int):
        base = addr - (addr % self.config.caches.line_bytes)
        return self.stage.get(base)

    def divert_write_back(self, line: CacheLine, now_ns: float) -> bool:
        if line.base_addr not in self._inflight_lines:
            return False
        self.stage[line.base_addr] = list(line.words)
        self.stats.add("staged_write_backs")
        return True

    def _release_stage(self, bases, now_ns: float) -> float:
        """Write staged lines whose transactions all finished to NVMM."""
        for base in sorted(bases):
            holders = self._inflight_lines.get(base)
            if holders:
                continue  # another transaction still holds the line back
            words = self.stage.pop(base, None)
            if words is None:
                continue
            if self.crash_plan is not None:
                # The staged line is about to reach NVMM; its transactions
                # have all committed, so redo data must already be durable.
                self.crash_plan.fire("stage-release", addr=base)
            result = self.controller.nvm.write_data_line(base, words, now_ns)
            now_ns += result.schedule.stall_ns
            self.stats.add("stage_releases")
        return now_ns

    # ------------------------------------------------------------------
    # Hot path
    # ------------------------------------------------------------------

    def on_store(
        self,
        tx: TransactionInfo,
        line: CacheLine,
        word_index: int,
        old_word: int,
        new_word: int,
        now_ns: float,
    ) -> float:
        mask = dirty_byte_mask(old_word, new_word) if self.use_dirty_flags else 0xFF
        entry = LogEntry(
            type=EntryType.REDO,
            tid=tx.tid,
            txid=tx.txid,
            addr=line.base_addr + word_index * WORD_BYTES,
            redo=new_word,
            dirty_mask=mask,
        )
        if self.tracer is not None:
            self.tracer.emit(
                "log-create",
                "log",
                now_ns,
                core=tx.tid,
                txid=tx.txid,
                addr=entry.addr,
                entry="redo",
            )
        evicted = self.buffer.insert(entry, now_ns)
        now_ns, _accept = self._persist_many(evicted, now_ns)
        key = (tx.tid, tx.txid)
        self._inflight_lines.setdefault(line.base_addr, set()).add(key)
        self._tx_lines.setdefault(key, set()).add(line.base_addr)
        return now_ns

    def commit_tx(self, tx: TransactionInfo, now_ns: float) -> float:
        entries = self.buffer.pop_tx(tx.tid, tx.txid)
        now_ns, last_accept = self._persist_many(entries, now_ns)
        record = CommitRecord(
            tid=tx.tid, txid=tx.txid, timestamp=self.next_commit_timestamp()
        )
        result = self.persist_commit(record, now_ns)
        now_ns = max(now_ns, last_accept, result.schedule.accept_ns)
        # The transaction no longer blocks its lines; release any staged
        # ones that have no other in-flight holders.
        key = (tx.tid, tx.txid)
        bases = self._tx_lines.pop(key, set())
        for base in bases:
            holders = self._inflight_lines.get(base)
            if holders is not None:
                holders.discard(key)
                if not holders:
                    del self._inflight_lines[base]
        now_ns = self._release_stage(bases, now_ns)
        tx.committed = True
        tx.commit_ns = now_ns + self._commit_overhead_ns
        return tx.commit_ns

    def tick(self, now_ns: float) -> float:
        expired = self.buffer.pop_expired(now_ns)
        now_ns, _accept = self._persist_many(expired, now_ns)
        return now_ns

    def drain(self, now_ns: float) -> float:
        now_ns, _accept = self._persist_many(self.buffer.pop_all(), now_ns)
        # Any leftover staged lines belong to committed transactions by
        # now (the run loop commits everything before draining).
        self._inflight_lines.clear()
        now_ns = self._release_stage(list(self.stage), now_ns)
        return now_ns
