"""In-cache-line logging (InCLL-style, after Cohen et al., ASPLOS'19).

*Fine-Grain Checkpointing with In-Cache-Line Logging* embeds undo words
next to the data they protect instead of streaming them to a central log.
This logger models that design on our substrate: every 64-byte data line
owns ``incll_slots_per_line`` embedded undo slots in a dedicated aux
region of NVMM, addressed by line index so an embedded entry costs two
small colocated word writes (undo data, then the validating metadata)
with none of the central log's sequence/control overhead.  When a line's
embedded slots are exhausted within an epoch, the store falls back to a
regular UNDO entry in the central log — the overflow log.

Commit is undo-style (Figure 1(c)): force the transaction's lines back,
then persist a commit record in the central log.  Embedded entries are
never invalidated at commit; instead a durable *epoch* word advances at
every force-write-back scan, and recovery treats an embedded entry as
live only while its epoch is recent (see ``_EPOCH_GRACE``).  Because the
central log frees a commit record only two scans after its transaction
committed, every entry of a truncated transaction is epoch-stale before
its commit record disappears — the invariant the validity rule rests on.

The ``tx-table`` truncation policy frees commit records immediately at
commit, which would break that invariant, so this design rejects it.
"""

from typing import Dict, List, Optional, Set, Tuple

from repro.cache.cacheline import CacheLine
from repro.common.bitops import WORD_BYTES
from repro.common.config import SystemConfig
from repro.common.errors import ConfigError
from repro.common.stats import StatGroup
from repro.logging_hw.base import HardwareLogger, TransactionInfo
from repro.logging_hw.entries import CommitRecord, EntryType, LogEntry, ParsedMeta
from repro.logging_hw.recovery import RecoveredState, ScannedRecord
from repro.logging_hw.region import LogRegion
from repro.memory.controller import MemoryController
from repro.nvm.module import WriteKind

# Bytes of aux region per embedded slot: one undo word + one meta word.
SLOT_BYTES = 2 * WORD_BYTES

# An embedded entry is live while ``epoch >= durable_epoch - _EPOCH_GRACE``.
# Grace 1 covers the crash window between persisting the advanced epoch
# word and re-stamping an open transaction's entries (see on_fwb_scan).
_EPOCH_GRACE = 1

_VALID_BIT = 1
_WORD_SHIFT = 1
_TID_SHIFT = 4
_TXID_SHIFT = 12
_EPOCH_SHIFT = 28


def incll_aux_base(config: SystemConfig) -> int:
    """Base address of the embedded-slot region (above the central log)."""
    return (
        config.nvmm_base
        + config.nvm.size_bytes
        + config.logging.log_region_bytes
    )


def pack_embedded_meta(word_index: int, tid: int, txid: int, epoch: int) -> int:
    """Pack one embedded slot's validating metadata word."""
    return (
        _VALID_BIT
        | ((word_index & 0x7) << _WORD_SHIFT)
        | ((tid & 0xFF) << _TID_SHIFT)
        | ((txid & 0xFFFF) << _TXID_SHIFT)
        | ((epoch & ((1 << 36) - 1)) << _EPOCH_SHIFT)
    )


def unpack_embedded_meta(meta: int) -> Tuple[bool, int, int, int, int]:
    """Inverse of :func:`pack_embedded_meta`: (valid, word, tid, txid, epoch)."""
    return (
        bool(meta & _VALID_BIT),
        (meta >> _WORD_SHIFT) & 0x7,
        (meta >> _TID_SHIFT) & 0xFF,
        (meta >> _TXID_SHIFT) & 0xFFFF,
        (meta >> _EPOCH_SHIFT) & ((1 << 36) - 1),
    )


class _EmbeddedEntry:
    """Volatile record of one live embedded slot."""

    __slots__ = ("slot_addr", "word_index", "tid", "txid", "undo")

    def __init__(self, slot_addr, word_index, tid, txid, undo):
        self.slot_addr = slot_addr
        self.word_index = word_index
        self.tid = tid
        self.txid = txid
        self.undo = undo


class InCllLogger(HardwareLogger):
    """Per-cache-line embedded undo slots with an overflow log fallback."""

    name = "incll"

    def __init__(
        self,
        config: SystemConfig,
        controller: MemoryController,
        region: LogRegion,
        stats: Optional[StatGroup] = None,
    ) -> None:
        super().__init__(config, controller, region, stats)
        if config.logging.truncation == "tx-table":
            raise ConfigError(
                "InCLL epoch validity needs the fwb-scan truncation horizon; "
                "tx-table frees commit records before entries go stale"
            )
        self._slots_per_line = config.logging.incll_slots_per_line
        self._aux_base = incll_aux_base(config)
        self._area_base = self._aux_base + 64
        self._epoch = 0
        # line index -> per-slot holder (None | _EmbeddedEntry).
        self._line_slots: Dict[int, List[Optional[_EmbeddedEntry]]] = {}
        # txid -> its live embedded entries (open transactions only).
        self._tx_embedded: Dict[int, List[_EmbeddedEntry]] = {}
        # txid -> word addresses already undo-logged (first-store filter).
        self._tx_words: Dict[int, Set[int]] = {}
        # (tid, txid) -> line bases for the forced write-back at commit.
        self._tx_lines: Dict[Tuple[int, int], Set[int]] = {}
        self._committed: Set[int] = set()

    # ------------------------------------------------------------------
    # Embedded slot plumbing
    # ------------------------------------------------------------------

    def _slot_addr(self, line_index: int, slot: int) -> int:
        return self._area_base + (line_index * self._slots_per_line + slot) * SLOT_BYTES

    def _free_slot(self, line_index: int) -> Optional[int]:
        slots = self._line_slots.setdefault(
            line_index, [None] * self._slots_per_line
        )
        for i, holder in enumerate(slots):
            if holder is None or holder.txid in self._committed:
                return i
        return None

    def _write_embedded(
        self, entry: _EmbeddedEntry, now_ns: float, restamp: bool = False
    ) -> float:
        """Persist one embedded slot: undo word first, then the metadata.

        The metadata word validates the slot, so a crash between the two
        writes leaves a dead slot and the (not-yet-stored) word intact.
        A re-stamp rewrites only the metadata with the current epoch.
        """
        plan = self.crash_plan
        if not restamp:
            if plan is not None:
                plan.fire("embedded-write", txid=entry.txid, addr=entry.slot_addr)
            result = self.controller.write_log_entry(
                entry.slot_addr, [entry.undo], now_ns, kind=WriteKind.LOG
            )
            now_ns += result.schedule.stall_ns
        meta = pack_embedded_meta(
            entry.word_index, entry.tid, entry.txid, self._epoch
        )
        if plan is not None:
            plan.fire(
                "embedded-write", txid=entry.txid, addr=entry.slot_addr + WORD_BYTES
            )
        result = self.controller.write_log_entry(
            entry.slot_addr + WORD_BYTES, [meta], now_ns, kind=WriteKind.LOG
        )
        return now_ns + result.schedule.stall_ns

    # ------------------------------------------------------------------
    # Hot path
    # ------------------------------------------------------------------

    def on_store(
        self,
        tx: TransactionInfo,
        line: CacheLine,
        word_index: int,
        old_word: int,
        new_word: int,
        now_ns: float,
    ) -> float:
        addr = line.base_addr + word_index * WORD_BYTES
        logged = self._tx_words.setdefault(tx.txid, set())
        self._tx_lines.setdefault((tx.tid, tx.txid), set()).add(line.base_addr)
        if addr in logged:
            # The oldest pre-transaction value is already captured.
            return now_ns
        logged.add(addr)
        line_index = (line.base_addr - self.config.nvmm_base) // self.config.caches.line_bytes
        slot = self._free_slot(line_index)
        if slot is not None:
            entry = _EmbeddedEntry(
                self._slot_addr(line_index, slot), word_index,
                tx.tid, tx.txid, old_word,
            )
            self._line_slots[line_index][slot] = entry
            self._tx_embedded.setdefault(tx.txid, []).append(entry)
            now_ns = self._write_embedded(entry, now_ns)
            self.stats.add("embedded_entries")
            if self.tracer is not None:
                self.tracer.emit(
                    "word-state", "word-state", now_ns,
                    core=tx.tid, txid=tx.txid, addr=addr,
                    **{"from": "CLEAN", "to": "EMBEDDED"},
                )
            return now_ns
        # Embedded capacity exhausted: overflow to the central log.
        overflow = LogEntry(
            type=EntryType.UNDO,
            tid=tx.tid,
            txid=tx.txid,
            addr=addr,
            undo=old_word,
            redo=0,
            dirty_mask=0xFF,
        )
        result = self.persist_entry(overflow, now_ns)
        self.stats.add("incll_overflows")
        if self.tracer is not None:
            self.tracer.emit(
                "word-state", "word-state", now_ns,
                core=tx.tid, txid=tx.txid, addr=addr,
                **{"from": "CLEAN", "to": "OVERFLOW"},
            )
        return now_ns + result.schedule.stall_ns

    def commit_tx(self, tx: TransactionInfo, now_ns: float) -> float:
        last_accept = now_ns
        for base in sorted(self._tx_lines.pop((tx.tid, tx.txid), ())):
            if self.hierarchy is None:
                break
            if self.crash_plan is not None:
                self.crash_plan.fire("forced-writeback", txid=tx.txid, addr=base)
            done = self.hierarchy.write_back_line(base, now_ns)
            last_accept = max(last_accept, done)
            self.stats.add("forced_data_write_backs")
        record = CommitRecord(
            tid=tx.tid, txid=tx.txid, timestamp=self.next_commit_timestamp()
        )
        result = self.persist_commit(record, max(now_ns, last_accept))
        now_ns = max(now_ns, last_accept, result.schedule.accept_ns)
        # Commit does not touch the embedded slots: they expire via the
        # epoch and become reusable the moment the holder is committed.
        self._committed.add(tx.txid)
        self._tx_embedded.pop(tx.txid, None)
        self._tx_words.pop(tx.txid, None)
        tx.committed = True
        tx.commit_ns = now_ns + self._commit_overhead_ns
        return tx.commit_ns

    def tick(self, now_ns: float) -> float:
        return now_ns

    def drain(self, now_ns: float) -> float:
        return now_ns

    def on_fwb_scan(self, now_ns: float) -> float:
        """Advance the durable epoch; re-stamp open transactions' entries.

        The epoch word persists *first*: if the machine dies before the
        re-stamps land, an open transaction's entries sit one epoch
        behind, which the ``_EPOCH_GRACE`` validity rule still accepts.
        """
        self._epoch += 1
        if self.crash_plan is not None:
            self.crash_plan.fire("embedded-write", addr=self._aux_base)
        result = self.controller.write_log_entry(
            self._aux_base, [self._epoch], now_ns, kind=WriteKind.LOG
        )
        now_ns += result.schedule.stall_ns
        for txid, entries in self._tx_embedded.items():
            if txid in self._committed:
                continue
            for entry in entries:
                now_ns = self._write_embedded(entry, now_ns, restamp=True)
                self.stats.add("embedded_restamps")
        return now_ns

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def recover_design_state(self, state: RecoveredState) -> None:
        recover_incll(self.controller, self.config, state)


def recover_incll(
    controller: MemoryController, config: SystemConfig, state: RecoveredState
) -> None:
    """Roll back live embedded entries of uncommitted transactions.

    Runs after the central-log pass filled ``state.committed_txids``.
    Reads only durable state: the epoch word and the (sparse) slot area.
    Every rolled-back word is synthesized into ``state.records`` so the
    fault-injection oracle's idempotence probe sees it.
    """
    array = controller.nvm.array
    aux_base = incll_aux_base(config)
    area_base = aux_base + 64
    durable_epoch = array.read_logical(aux_base)
    per_line = config.logging.incll_slots_per_line
    n_lines = config.nvm.size_bytes // config.caches.line_bytes
    area_end = area_base + n_lines * per_line * SLOT_BYTES
    for meta_addr in array.written_addresses(area_base, area_end):
        if (meta_addr - area_base) % SLOT_BYTES != WORD_BYTES:
            continue  # undo data word, not a metadata word
        valid, word_index, tid, txid, epoch = unpack_embedded_meta(
            array.read_logical(meta_addr)
        )
        if not valid or epoch < durable_epoch - _EPOCH_GRACE:
            continue
        if txid in state.committed_txids:
            continue
        undo = array.read_logical(meta_addr - WORD_BYTES)
        slot_index = (meta_addr - WORD_BYTES - area_base) // SLOT_BYTES
        line_index = slot_index // per_line
        home = (
            config.nvmm_base
            + line_index * config.caches.line_bytes
            + word_index * WORD_BYTES
        )
        array.write_logical(home, undo)
        state.undone_words += 1
        meta = ParsedMeta(
            type=EntryType.UNDO,
            tid=tid,
            txid=txid,
            torn=0,
            ulog_counter=0,
            seq=0,
            addr=home,
            dirty_mask=0xFF,
            timestamp=0,
        )
        state.records.append(
            ScannedRecord(
                position=len(state.records),
                offset=slot_index,
                meta=meta,
                data_words=(undo,),
                region_base=aux_base,
            )
        )
