"""Volatile log buffers (FIFOs) with coalescing and eager eviction.

Both MorLog buffers and the FWB baseline's log buffer are instances of
:class:`LogBuffer`:

- entries coalesce by (tid, txid, word address): an undo+redo entry keeps
  its *oldest* undo and takes the *newest* redo (CONSEQUENCE 1 of the
  paper), accumulating the per-byte dirty flag;
- an entry is evicted to NVMM when the buffer is full (FIFO order) or when
  it has aged past N cycles — N below the minimum cache-traversal latency,
  which is what keeps undo data ahead of in-place updates (section III-B);
- with SLDE dirty flags available, entries whose log data are completely
  clean are dropped instead of written ("silent log writes", section
  IV-A).
"""

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.common.stats import StatGroup
from repro.logging_hw.entries import EntryType, LogEntry


@dataclass
class BufferedEntry:
    """A log entry while it lives in a volatile buffer."""

    entry: LogEntry
    insert_ns: float   # age runs from FIRST insertion (ordering bound)


class LogBuffer:
    """A bounded FIFO of log entries with coalescing."""

    def __init__(
        self,
        name: str,
        capacity: int,
        evict_age_ns: Optional[float],
        drop_silent: bool,
        stats: Optional[StatGroup] = None,
    ) -> None:
        if capacity < 0:
            raise ValueError("buffer capacity cannot be negative")
        self.name = name
        self.capacity = capacity
        self.evict_age_ns = evict_age_ns
        self.drop_silent = drop_silent
        self.stats = stats if stats is not None else StatGroup(name)
        self._entries: "OrderedDict[Tuple[int, int, int], BufferedEntry]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Tuple[int, int, int]) -> bool:
        return key in self._entries

    def find(self, key: Tuple[int, int, int]) -> Optional[BufferedEntry]:
        return self._entries.get(key)

    # ------------------------------------------------------------------
    # Insertion / coalescing
    # ------------------------------------------------------------------

    def insert(self, entry: LogEntry, now_ns: float) -> List[LogEntry]:
        """Add or coalesce an entry; returns entries evicted for capacity.

        Coalescing keeps the existing entry's FIFO slot and insertion time
        (the eviction deadline protects the *oldest* undo data) and merges
        log data per CONSEQUENCE 1.
        """
        if self.drop_silent and entry.dirty_mask == 0:
            self.stats.add("silent_drops")
            return []
        existing = self._entries.get(entry.key)
        if existing is not None:
            existing.entry = self._coalesce(existing.entry, entry)
            self.stats.add("coalesced")
            return []
        evicted: List[LogEntry] = []
        while len(self._entries) >= self.capacity:
            _key, victim = self._entries.popitem(last=False)
            evicted.append(victim.entry)
            self.stats.add("capacity_evictions")
        self._entries[entry.key] = BufferedEntry(entry, now_ns)
        self.stats.add("inserts")
        return evicted

    @staticmethod
    def _coalesce(old: LogEntry, new: LogEntry) -> LogEntry:
        if old.type is not new.type:
            raise ValueError("cannot coalesce entries of different types")
        mask = old.dirty_mask | new.dirty_mask
        if old.type is EntryType.UNDO_REDO:
            # Oldest undo, newest redo; the mask accumulates byte dirtiness
            # across the intermediate values (a safe superset of
            # diff(undo, newest redo)).
            return LogEntry(
                type=EntryType.UNDO_REDO,
                tid=old.tid,
                txid=old.txid,
                addr=old.addr,
                undo=old.undo,
                redo=new.redo,
                dirty_mask=mask,
            )
        if old.type is EntryType.UNDO:
            # Only the oldest undo matters; later writes change nothing.
            return LogEntry(
                type=EntryType.UNDO,
                tid=old.tid,
                txid=old.txid,
                addr=old.addr,
                undo=old.undo,
                redo=old.redo,
                dirty_mask=mask,
            )
        return LogEntry(
            type=EntryType.REDO,
            tid=old.tid,
            txid=old.txid,
            addr=old.addr,
            redo=new.redo,
            dirty_mask=mask,
        )

    # ------------------------------------------------------------------
    # Eviction / removal
    # ------------------------------------------------------------------

    def pop_expired(self, now_ns: float) -> List[LogEntry]:
        """Remove entries older than the eager-eviction deadline."""
        if self.evict_age_ns is None:
            return []
        out: List[LogEntry] = []
        while self._entries:
            key = next(iter(self._entries))
            buffered = self._entries[key]
            if now_ns - buffered.insert_ns < self.evict_age_ns:
                break
            del self._entries[key]
            out.append(buffered.entry)
        if out:
            self.stats.add("age_evictions", len(out))
        return out

    def pop_key(self, key: Tuple[int, int, int]) -> Optional[LogEntry]:
        buffered = self._entries.pop(key, None)
        return buffered.entry if buffered is not None else None

    def pop_tx(self, tid: int, txid: int) -> List[LogEntry]:
        """Remove all of one transaction's entries, in FIFO order."""
        keys = [k for k, b in self._entries.items() if k[0] == tid and k[1] == txid]
        return [self._entries.pop(k).entry for k in keys]

    def pop_addr_range(self, base_addr: int, size: int) -> List[LogEntry]:
        """Remove entries whose home word falls inside [base, base+size)."""
        keys = [
            k for k in self._entries if base_addr <= k[2] < base_addr + size
        ]
        return [self._entries.pop(k).entry for k in keys]

    def pop_all(self) -> List[LogEntry]:
        out = [b.entry for b in self._entries.values()]
        self._entries.clear()
        return out
