"""The circular log region (paper section III-A).

A single-consumer, single-producer Lamport circular buffer of 64-bit slots
in NVMM.  The producer (log controller) appends entries at the tail; the
consumer (log truncation) advances the head once a transaction's updated
data are persistent.  Head state is persisted in a small control block at
the region base so recovery can find the log after a crash; the tail is
recovered by scanning forward until the torn-bit parity or the sequence
chain breaks.

Entries never straddle the wrap point: when the remaining slots cannot hold
the entry, the tail jumps back to the first entry slot and the pass parity
(torn bit) flips.
"""

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional

from repro.common.bitops import WORD_BYTES, WORDS_PER_LINE
from repro.common.errors import LogOverflowError
from repro.common.stats import StatGroup
from repro.logging_hw.entries import (
    CommitRecord,
    EntryType,
    LogEntry,
    SEQ_MODULUS,
    pack_meta_words,
)
from repro.memory.controller import MemoryController
from repro.nvm.module import LogDataWord, WriteKind, WriteResult

# The first cache line of the region is the control block.
CONTROL_SLOTS = WORDS_PER_LINE
MAX_ENTRY_SLOTS = EntryType.UNDO_REDO.n_slots


@dataclass
class LiveEntry:
    """Volatile index of one entry, used for truncation decisions."""

    offset: int        # slot offset inside the region
    n_slots: int
    type: EntryType
    tid: int
    txid: int
    seq: int


class LogRegion:
    """Circular log with durable head pointer and torn-bit passes."""

    def __init__(
        self,
        controller: MemoryController,
        base_addr: int,
        size_bytes: int,
        stats: Optional[StatGroup] = None,
        on_overflow: Optional[Callable[[float], float]] = None,
    ) -> None:
        if size_bytes % WORD_BYTES:
            raise ValueError("log region size must be word aligned")
        self.controller = controller
        self.base_addr = base_addr
        self.n_slots = size_bytes // WORD_BYTES
        if self.n_slots <= CONTROL_SLOTS + MAX_ENTRY_SLOTS:
            raise ValueError("log region too small")
        self.stats = stats if stats is not None else StatGroup("log_region")
        self.on_overflow = on_overflow
        self.head = CONTROL_SLOTS      # slot offset of the oldest live entry
        self.tail = CONTROL_SLOTS      # next free slot offset
        self.parity = 1                # torn bit of the current pass
        self.head_parity = 1           # torn bit valid at the head
        self.seq = 0                   # next sequence number
        self.head_seq = 0              # sequence number of the head entry
        self.live: Deque[LiveEntry] = deque()
        self._used_slots = 0
        # Optional debug tap: called with each record as it is appended
        # (used by the WAL-ordering checker).
        self.append_observer: Optional[Callable] = None
        # Fault-injection plan (installed by System.install_crash_plan).
        self.crash_plan = None
        # Trace bus (installed by System.install_tracer); observation only.
        self.tracer = None
        self._persist_control(0.0)

    # ------------------------------------------------------------------
    # Capacity accounting
    # ------------------------------------------------------------------

    @property
    def capacity_slots(self) -> int:
        return self.n_slots - CONTROL_SLOTS

    def used_slots(self) -> int:
        return self._used_slots

    def free_slots(self) -> int:
        return self.capacity_slots - self.used_slots()

    def slot_addr(self, offset: int) -> int:
        return self.base_addr + offset * WORD_BYTES

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------

    def _reserve(self, n_slots: int, now_ns: float) -> float:
        # Keep one max-size entry of slack so head == tail stays
        # unambiguous (classic circular-buffer discipline).
        while self.free_slots() < n_slots + MAX_ENTRY_SLOTS:
            if self.on_overflow is None:
                raise LogOverflowError(
                    "log region full (%d live slots)" % self.used_slots()
                )
            freed_at = self.on_overflow(now_ns)
            now_ns = max(now_ns, freed_at)
            if self.free_slots() < n_slots + MAX_ENTRY_SLOTS:
                raise LogOverflowError("overflow handler could not free space")
        return now_ns

    def append(
        self,
        record,
        now_ns: float,
        undo: Optional[LogDataWord] = None,
        redo: Optional[LogDataWord] = None,
    ) -> WriteResult:
        """Append a log entry or commit record and write it to NVMM."""
        entry_type = record.type
        n_slots = entry_type.n_slots
        now_ns = self._reserve(n_slots, now_ns)

        if self.n_slots - self.tail < n_slots:
            # Wrap: flip the pass parity, restart after the control block.
            self.tail = CONTROL_SLOTS
            self.parity ^= 1
            self.stats.add("wraps")
            if self.tracer is not None:
                self.tracer.emit("log-wrap", "log", now_ns)

        if entry_type in (EntryType.UNDO_REDO, EntryType.UNDO) and undo is None:
            undo = LogDataWord(record.undo)
        if entry_type in (EntryType.UNDO_REDO, EntryType.REDO) and redo is None:
            redo = LogDataWord(record.redo)

        offset = self.tail
        seq = self.seq
        meta_words = pack_meta_words(record, self.parity, seq)
        kind = WriteKind.COMMIT if entry_type is EntryType.COMMIT else WriteKind.LOG
        result = self.controller.write_log_entry(
            self.slot_addr(offset),
            meta_words,
            now_ns,
            undo=undo,
            redo=redo,
            kind=kind,
        )
        self.tail = offset + n_slots
        self.seq = (seq + 1) % SEQ_MODULUS
        self.live.append(
            LiveEntry(offset, n_slots, entry_type, record.tid, record.txid, seq)
        )
        self._used_slots += n_slots
        self.stats.add("entries_appended")
        if self.append_observer is not None:
            self.append_observer(record)
        if self.tracer is not None:
            self.tracer.emit(
                "log-append",
                "log",
                now_ns,
                txid=record.txid,
                addr=self.slot_addr(offset),
                entry=entry_type.name.lower(),
                slots=n_slots,
                seq=seq,
            )
        return result

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------

    def truncate(self, can_free: Callable[[LiveEntry], bool], now_ns: float) -> int:
        """Free the longest eligible prefix of live entries.

        ``can_free(entry)`` decides eligibility (e.g. "its transaction
        committed before the last two FWB scans").  Returns the number of
        entries freed; persists the new head pointer when anything moved.
        """
        freed = 0
        while self.live and can_free(self.live[0]):
            entry = self.live.popleft()
            self._used_slots -= entry.n_slots
            freed += 1
            if self.live:
                nxt = self.live[0]
                self.head = nxt.offset
                self.head_seq = nxt.seq
                if nxt.offset < entry.offset:
                    self.head_parity ^= 1
            else:
                self.head = self.tail
                self.head_seq = self.seq
                self.head_parity = self.parity
        if freed:
            if self.crash_plan is not None:
                # A crash here leaves the old durable head with entries
                # already freed in the volatile index — recovery must
                # tolerate re-scanning (and re-applying) the stale prefix.
                self.crash_plan.fire("log-truncate", head=self.head)
            self._persist_control(now_ns)
            self.stats.add("entries_truncated", freed)
            if self.tracer is not None:
                self.tracer.emit(
                    "log-truncate", "log", now_ns, freed=freed, head=self.head
                )
        return freed

    # ------------------------------------------------------------------
    # Durable control block
    # ------------------------------------------------------------------

    def _persist_control(self, now_ns: float) -> None:
        words = [self.head, self.head_seq, self.head_parity, 0, 0, 0, 0, 0]
        self.controller.nvm.write_data_line(self.base_addr, words, now_ns)

    @staticmethod
    def read_control(controller: MemoryController, base_addr: int):
        """Read (head, head_seq, head_parity) from the control block."""
        array = controller.nvm.array
        return (
            array.read_logical(base_addr),
            array.read_logical(base_addr + WORD_BYTES),
            array.read_logical(base_addr + 2 * WORD_BYTES),
        )


class LogRegionSet:
    """Distributed (per-thread) logs — paper section III-F.

    One :class:`LogRegion` per hardware thread, with the same append /
    truncate interface as a single region so the loggers are oblivious.
    Appends route by the record's TID; the commit-record timestamps order
    transactions across threads at recovery time (the TID in each entry
    becomes redundant, but we keep the shared entry format).
    """

    def __init__(
        self,
        controller: MemoryController,
        base_addr: int,
        total_bytes: int,
        n_threads: int,
        stats: Optional[StatGroup] = None,
        on_overflow: Optional[Callable[[float], float]] = None,
    ) -> None:
        if n_threads <= 0:
            raise ValueError("need at least one thread log")
        self.base_addr = base_addr
        per_region = (total_bytes // n_threads) & ~63
        self.region_bytes = per_region
        self.regions = [
            LogRegion(
                controller,
                base_addr + i * per_region,
                per_region,
                stats,
                on_overflow,
            )
            for i in range(n_threads)
        ]
        self.stats = self.regions[0].stats

    @property
    def on_overflow(self):
        return self.regions[0].on_overflow

    @on_overflow.setter
    def on_overflow(self, handler) -> None:
        for region in self.regions:
            region.on_overflow = handler

    def region_for(self, tid: int) -> LogRegion:
        return self.regions[tid % len(self.regions)]

    def append(self, record, now_ns: float, undo=None, redo=None):
        return self.region_for(record.tid).append(record, now_ns, undo=undo, redo=redo)

    def truncate(self, can_free, now_ns: float) -> int:
        return sum(r.truncate(can_free, now_ns) for r in self.regions)

    def free_slots(self) -> int:
        return min(r.free_slots() for r in self.regions)

    def region_bases(self):
        return [r.base_addr for r in self.regions]
