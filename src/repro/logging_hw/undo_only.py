"""Undo-only hardware logging (the ATOM-style ablation baseline).

Figure 1(c) of the paper: undo logging lets in-place data write back as
soon as the corresponding undo data persist, but *transaction commit must
wait for all the updated data to be persisted* — otherwise a crash after
commit could lose the transaction (there is no redo data to roll it
forward).  That forced write-back at commit is exactly the cost the
undo+redo designs remove, and this logger exists so the ablation bench
can measure it.

Per store: an undo entry (the word's pre-store value, kept oldest-first
under coalescing) goes through an eager FIFO buffer like FWB's.  Commit:
flush the transaction's undo entries, force-write-back every cache line
the transaction touched, wait for those writes to reach the persistence
domain, then write the commit record.  Recovery: committed transactions
need nothing (their data are in place); everything else is rolled back
with the undo data.
"""

from typing import Dict, Set, Tuple

from repro.cache.cacheline import CacheLine
from repro.common.bitops import WORD_BYTES, dirty_byte_mask
from repro.common.config import SystemConfig
from repro.common.stats import StatGroup
from repro.logging_hw.base import HardwareLogger, TransactionInfo
from repro.logging_hw.buffers import LogBuffer
from repro.logging_hw.entries import CommitRecord, EntryType, LogEntry
from repro.logging_hw.region import LogRegion
from repro.memory.controller import MemoryController


class UndoOnlyLogger(HardwareLogger):
    """ATOM-style undo logging with forced data write-back at commit."""

    name = "undo-only"

    def __init__(
        self,
        config: SystemConfig,
        controller: MemoryController,
        region: LogRegion,
        stats: StatGroup = None,
    ) -> None:
        super().__init__(config, controller, region, stats)
        self.buffer = LogBuffer(
            "undo_buffer",
            config.logging.undo_redo_buffer_entries,
            self._evict_age_ns,
            drop_silent=self.use_dirty_flags,
            stats=self.stats,
        )
        # (tid, txid) -> line bases the transaction has written.
        self._tx_lines: Dict[Tuple[int, int], Set[int]] = {}

    # ------------------------------------------------------------------
    # Hot path
    # ------------------------------------------------------------------

    def on_store(
        self,
        tx: TransactionInfo,
        line: CacheLine,
        word_index: int,
        old_word: int,
        new_word: int,
        now_ns: float,
    ) -> float:
        mask = dirty_byte_mask(old_word, new_word) if self.use_dirty_flags else 0xFF
        entry = LogEntry(
            type=EntryType.UNDO,
            tid=tx.tid,
            txid=tx.txid,
            addr=line.base_addr + word_index * WORD_BYTES,
            undo=old_word,
            redo=0,
            dirty_mask=mask,
        )
        if self.tracer is not None:
            self.tracer.emit(
                "log-create",
                "log",
                now_ns,
                core=tx.tid,
                txid=tx.txid,
                addr=entry.addr,
                entry="undo",
            )
        evicted = self.buffer.insert(entry, now_ns)
        now_ns, _accept = self._persist_many(evicted, now_ns)
        self._tx_lines.setdefault((tx.tid, tx.txid), set()).add(line.base_addr)
        return now_ns

    def commit_tx(self, tx: TransactionInfo, now_ns: float) -> float:
        # Undo data first (write-ahead), then the forced data write-back
        # the undo-only scheme cannot avoid (Figure 1(c): commit waits for
        # persist(A), persist(B)).
        entries = self.buffer.pop_tx(tx.tid, tx.txid)
        now_ns, last_accept = self._persist_many(entries, now_ns)
        for base in sorted(self._tx_lines.pop((tx.tid, tx.txid), ())):
            if self.hierarchy is None:
                break
            if self.crash_plan is not None:
                # Crashing between the forced per-line write-backs leaves a
                # partially in-place transaction that only the undo data
                # can roll back — the ordering this design must get right.
                self.crash_plan.fire("forced-writeback", txid=tx.txid, addr=base)
            done = self.hierarchy.write_back_line(base, now_ns)
            last_accept = max(last_accept, done)
            self.stats.add("forced_data_write_backs")
        record = CommitRecord(
            tid=tx.tid, txid=tx.txid, timestamp=self.next_commit_timestamp()
        )
        result = self.persist_commit(record, max(now_ns, last_accept))
        now_ns = max(now_ns, last_accept, result.schedule.accept_ns)
        tx.committed = True
        tx.commit_ns = now_ns + self._commit_overhead_ns
        return tx.commit_ns

    def tick(self, now_ns: float) -> float:
        expired = self.buffer.pop_expired(now_ns)
        now_ns, _accept = self._persist_many(expired, now_ns)
        return now_ns

    def drain(self, now_ns: float) -> float:
        now_ns, _accept = self._persist_many(self.buffer.pop_all(), now_ns)
        return now_ns

    # ------------------------------------------------------------------
    # Cache callbacks (write-ahead ordering)
    # ------------------------------------------------------------------

    def before_llc_write_back(self, line_addr: int, now_ns: float) -> float:
        pending = self.buffer.pop_addr_range(line_addr, self.config.caches.line_bytes)
        if pending:
            self.stats.add("wal_forced_flushes", len(pending))
            if self.tracer is not None:
                self.tracer.emit(
                    "wal-flush",
                    "log",
                    now_ns,
                    addr=line_addr,
                    entries=len(pending),
                )
            now_ns, _accept = self._persist_many(pending, now_ns)
        return now_ns
