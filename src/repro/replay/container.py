"""The columnar trace container: versioned, digest-addressed, compact.

A :class:`StoreTrace` holds one recorded run as parallel numpy columns:

- ``setup_addr`` / ``setup_val`` — the untimed setup-phase stores, in
  order, so a replayer can rebuild the pre-run memory image without
  executing workload setup code;
- ``op_kind`` / ``op_addr`` / ``op_val`` — the transactional op stream
  (loads, stores, non-temporal stores, compute delays) exactly as the
  transaction bodies issued it;
- ``tx_start`` / ``tx_core`` — per-transaction offsets into the op
  stream plus the core each transaction was dispatched on, preserving
  the recording run's interleaving;
- ``pair_old`` / ``pair_new`` — the old/new word of every transactional
  store to persistent memory, the raw material of the vectorized
  encoding fast path (dirty masks, codec prewarm).

On disk the container is ``MLTR`` magic + a canonical JSON header
(version, provenance metadata, column specs, payload SHA-256) + the raw
little-endian column bytes.  :func:`load_trace` rejects wrong magic,
unknown versions, truncated or corrupt files, and payload-digest
mismatches with typed errors.  :meth:`StoreTrace.digest` is a canonical
content hash over header and payload — the grid result cache keys replay
cells on it, so editing a trace in any way misses the cache.
"""

import hashlib
import json
import struct
from dataclasses import dataclass, field
from typing import Any, Dict

from repro.encoding.vector import require_numpy

try:
    import numpy as np
except ImportError:  # pragma: no cover - the toolchain ships numpy
    np = None

MAGIC = b"MLTR"
TRACE_VERSION = 1

#: Op kinds in the ``op_kind`` column.
OP_LOAD = 0
OP_STORE = 1
OP_STORE_NT = 2
OP_COMPUTE = 3

#: Column order and dtypes; the on-disk payload is these, concatenated.
COLUMNS = (
    ("setup_addr", "<u8"),
    ("setup_val", "<u8"),
    ("op_kind", "u1"),
    ("op_addr", "<u8"),
    ("op_val", "<u8"),
    ("tx_start", "<u8"),
    ("tx_core", "<u4"),
    ("pair_old", "<u8"),
    ("pair_new", "<u8"),
)


class TraceError(ValueError):
    """Base class for trace container errors."""


class TraceFormatError(TraceError):
    """The file is not a trace container, or is truncated/corrupt."""


class TraceVersionError(TraceFormatError):
    """The container's format version is not the one this code reads."""


class TraceDigestError(TraceError):
    """The payload does not hash to the digest the header promises."""


def _canonical_json(data: Dict[str, Any]) -> bytes:
    return json.dumps(data, sort_keys=True, separators=(",", ":")).encode()


@dataclass
class StoreTrace:
    """One recorded store stream plus its provenance metadata."""

    meta: Dict[str, Any]
    setup_addr: "np.ndarray"
    setup_val: "np.ndarray"
    op_kind: "np.ndarray"
    op_addr: "np.ndarray"
    op_val: "np.ndarray"
    tx_start: "np.ndarray"
    tx_core: "np.ndarray"
    pair_old: "np.ndarray" = field(default=None)
    pair_new: "np.ndarray" = field(default=None)

    def __post_init__(self) -> None:
        require_numpy()
        for name, dtype in COLUMNS:
            column = np.ascontiguousarray(getattr(self, name), dtype=dtype)
            setattr(self, name, column)
        if self.setup_addr.shape != self.setup_val.shape:
            raise TraceError("setup columns must be parallel")
        if not (self.op_kind.shape == self.op_addr.shape == self.op_val.shape):
            raise TraceError("op columns must be parallel")
        if self.tx_start.shape != self.tx_core.shape:
            raise TraceError("transaction columns must be parallel")
        if self.pair_old.shape != self.pair_new.shape:
            raise TraceError("pair columns must be parallel")
        starts = self.tx_start
        if starts.size:
            if int(starts[0]) != 0 and int(starts[0]) > self.op_kind.size:
                raise TraceError("transaction offsets out of range")
            if (np.diff(starts.astype(np.int64)) < 0).any():
                raise TraceError("transaction offsets must be non-decreasing")
            if int(starts[-1]) > self.op_kind.size:
                raise TraceError("transaction offsets out of range")

    # -- shape ----------------------------------------------------------

    @property
    def n_transactions(self) -> int:
        return int(self.tx_start.size)

    @property
    def n_ops(self) -> int:
        return int(self.op_kind.size)

    @property
    def n_threads(self) -> int:
        return int(self.meta.get("n_threads", 1))

    def transaction_bounds(self, index: int):
        """The [lo, hi) op-stream slice of transaction ``index``."""
        lo = int(self.tx_start[index])
        if index + 1 < self.n_transactions:
            hi = int(self.tx_start[index + 1])
        else:
            hi = self.n_ops
        return lo, hi

    # -- hashing --------------------------------------------------------

    def _payload_bytes(self):
        for name, _dtype in COLUMNS:
            yield getattr(self, name).tobytes()

    def payload_sha256(self) -> str:
        digest = hashlib.sha256()
        for chunk in self._payload_bytes():
            digest.update(chunk)
        return digest.hexdigest()

    def _header(self) -> Dict[str, Any]:
        return {
            "version": TRACE_VERSION,
            "meta": self.meta,
            "columns": [
                {"name": name, "dtype": dtype, "length": int(getattr(self, name).size)}
                for name, dtype in COLUMNS
            ],
            "payload_sha256": self.payload_sha256(),
        }

    def digest(self) -> str:
        """Canonical content hash of the whole trace (header + payload).

        This is what cache keys carry: any change to the recorded
        stream, its metadata or the container version changes it.
        """
        digest = hashlib.sha256()
        digest.update(_canonical_json(self._header()))
        for chunk in self._payload_bytes():
            digest.update(chunk)
        return digest.hexdigest()


def save_trace(path: str, trace: StoreTrace) -> str:
    """Serialize ``trace`` to ``path``; returns the trace digest."""
    header = _canonical_json(trace._header())
    with open(path, "wb") as handle:
        handle.write(MAGIC)
        handle.write(struct.pack("<I", len(header)))
        handle.write(header)
        for chunk in trace._payload_bytes():
            handle.write(chunk)
    return trace.digest()


def load_trace(path: str) -> StoreTrace:
    """Read a trace container back, validating format, version, digest."""
    require_numpy()
    with open(path, "rb") as handle:
        raw = handle.read()
    if len(raw) < len(MAGIC) + 4 or raw[: len(MAGIC)] != MAGIC:
        raise TraceFormatError("%s: not a trace container (bad magic)" % path)
    (header_len,) = struct.unpack_from("<I", raw, len(MAGIC))
    header_end = len(MAGIC) + 4 + header_len
    if header_end > len(raw):
        raise TraceFormatError("%s: truncated header" % path)
    try:
        header = json.loads(raw[len(MAGIC) + 4 : header_end])
    except ValueError:
        raise TraceFormatError("%s: corrupt header JSON" % path)
    version = header.get("version")
    if version != TRACE_VERSION:
        raise TraceVersionError(
            "%s: trace format version %r, this reader wants %d"
            % (path, version, TRACE_VERSION)
        )
    specs = {spec["name"]: spec for spec in header.get("columns", ())}
    if set(specs) != {name for name, _ in COLUMNS}:
        raise TraceFormatError("%s: column set mismatch" % path)

    offset = header_end
    columns: Dict[str, "np.ndarray"] = {}
    for name, dtype in COLUMNS:
        spec = specs[name]
        if spec.get("dtype") != dtype:
            raise TraceFormatError(
                "%s: column %s has dtype %r, expected %r"
                % (path, name, spec.get("dtype"), dtype)
            )
        length = int(spec["length"])
        nbytes = length * np.dtype(dtype).itemsize
        if offset + nbytes > len(raw):
            raise TraceFormatError("%s: truncated payload (column %s)" % (path, name))
        columns[name] = np.frombuffer(raw, dtype=dtype, count=length, offset=offset).copy()
        offset += nbytes
    if offset != len(raw):
        raise TraceFormatError("%s: %d trailing bytes" % (path, len(raw) - offset))

    trace = StoreTrace(meta=header.get("meta", {}), **columns)
    expected = header.get("payload_sha256")
    actual = trace.payload_sha256()
    if expected != actual:
        raise TraceDigestError(
            "%s: payload digest mismatch (header %s, actual %s)"
            % (path, expected, actual)
        )
    return trace
