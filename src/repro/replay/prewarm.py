"""The vectorized encoding fast path: batch-classify, then seed memos.

A recorded trace presents every (old, new) word pair of the run up
front, so the per-word codec classification work — FPC prefix classes,
the DLDC Table-II pattern search, dirty-byte masks — runs once as numpy
array ops (:mod:`repro.encoding.vector`) over the *unique* rows, and the
results are installed into the same LRU memos (PR 4) the scalar encode
path consults.  The replay loop then encodes almost entirely out of
cache hits.

Exactness contract: every seeded entry is byte-identical to what the
scalar compute path would have produced and memoized for that key —
including SLDE's cached hook-argument tuples, which the decision hook
replays verbatim on hits.  Keys the prewarm cannot predict (e.g.
MorLog's coalesced dirty masks, which accumulate across stores to one
word) simply miss and take the scalar path; prewarming is result-inert
either way, which the differential suite pins by replaying with
``prewarm=False`` too.
"""

from typing import Dict

from repro.common.bitops import select_bytes
from repro.encoding.base import EncodedWord
from repro.encoding.crade import CradeCodec
from repro.encoding.dldc import (
    DLDC_HEADER_BITS,
    DLDC_TAG_BITS,
    DldcCodec,
    _SILENT_LOG_WRITE,
    _pattern_payload,
    _value_of,
)
from repro.encoding.expansion import policy_for_size
from repro.encoding.fpc import FPC_TAG_BITS, FpcCodec
from repro.encoding.slde import ENCODING_TYPE_FLAG_BITS, SldeCodec
from repro.encoding.vector import (
    FPC_PREFIX_PAYLOAD_BITS,
    HAVE_NUMPY,
    vec_dirty_byte_mask,
    vec_dldc_stream_bits,
    vec_fpc_prefix,
)
from repro.replay.container import OP_STORE, OP_STORE_NT, StoreTrace

try:
    import numpy as np
except ImportError:  # pragma: no cover - the toolchain ships numpy
    np = None


def _fpc_payload(word: int, prefix: int, bits: int) -> int:
    # Payload assembly for one classified word (mirrors fpc_compress).
    if prefix == 0b000:
        return 0
    if prefix in (0b001, 0b010, 0b011, 0b100):
        return word & ((1 << bits) - 1)
    if prefix == 0b101:
        return word >> 32
    if prefix == 0b110:
        return word & 0xFF
    return word


def _fpc_family_encoded(
    word: int, prefix: int, method: str, tag_bits: int, expansion_enabled: bool
) -> EncodedWord:
    bits = FPC_PREFIX_PAYLOAD_BITS[prefix]
    return EncodedWord(
        method=method,
        payload=_fpc_payload(word, prefix, bits),
        payload_bits=bits,
        tag_bits=tag_bits,
        tag_payload=prefix,
        policy=policy_for_size(bits, expansion_enabled),
    )


def _dldc_encoded(word: int, mask: int, tag: int, stream_bits: int) -> EncodedWord:
    # Mirrors DldcCodec._encode_dirty for one classified (word, mask) row;
    # ``tag`` is the winning Table-II tag, or -1 for raw dirty bytes.
    dirty = select_bytes(word, mask)
    if tag >= 0:
        payload = _pattern_payload(tag, dirty, _value_of(dirty))
        stream = 1 | (tag << DLDC_HEADER_BITS) | (
            payload << (DLDC_HEADER_BITS + DLDC_TAG_BITS)
        )
    else:
        body = 0
        for i, b in enumerate(dirty):
            body |= b << (8 * i)
        stream = body << DLDC_HEADER_BITS
    return EncodedWord(
        method="dldc",
        payload=stream,
        payload_bits=stream_bits,
        tag_bits=DldcCodec.DIRTY_FLAG_BITS,
        policy=policy_for_size(stream_bits),
        dirty_mask=mask,
    )


def _warm_context_free(codec, unique_words) -> int:
    """Seed a CRADE/FPC word memo from batch-classified prefixes."""
    memo = getattr(codec, "_memo", None)
    if memo is None or unique_words.size == 0:
        return 0
    if isinstance(codec, CradeCodec):
        method, tag_bits = "crade", FPC_TAG_BITS + 2
    elif isinstance(codec, FpcCodec):
        method, tag_bits = "fpc", FPC_TAG_BITS
    else:
        return 0
    expansion = codec._expansion_enabled
    prefixes = vec_fpc_prefix(unique_words)
    seeded = 0
    for word, prefix in zip(unique_words.tolist(), prefixes.tolist()):
        memo.put(word, _fpc_family_encoded(word, prefix, method, tag_bits, expansion))
        seeded += 1
    return seeded


def _warm_slde(slde: SldeCodec, words, masks) -> Dict[str, int]:
    """Seed SLDE's per-word decision memo (and DLDC's result memo).

    ``words``/``masks`` are the unique (log word, dirty mask) rows of the
    trace, both sides of every pair.  Only the context-free-alternative
    configuration is prewarmable — the memo key drops the old word then —
    and only CRADE alternatives have a vectorized classifier; anything
    else falls back to scalar encoding at replay time.
    """
    counts = {"slde_seeded": 0, "dldc_seeded": 0}
    log_memo = slde._log_memo
    alternative = slde.alternative
    if (
        log_memo is None
        or not alternative.context_free
        or not isinstance(alternative, CradeCodec)
        or words.size == 0
    ):
        return counts

    expansion = alternative._expansion_enabled
    prefixes = vec_fpc_prefix(words)
    tags, stream_bits, _compressed = vec_dldc_stream_bits(words, masks)
    dldc_memo = slde.dldc._memo
    alt_memo = alternative._memo

    for word, mask, prefix, tag, bits in zip(
        words.tolist(), masks.tolist(), prefixes.tolist(),
        tags.tolist(), stream_bits.tolist(),
    ):
        alt = _fpc_family_encoded(word, prefix, "crade", FPC_TAG_BITS + 2, expansion)
        if alt_memo is not None:
            alt_memo.put(word, alt)
        if mask == 0:
            dldc = _SILENT_LOG_WRITE
            hook = (word, "dldc", 0, alt.method, alt.total_bits, True)
            value = (dldc, hook, alt)
        else:
            dldc = _dldc_encoded(word, mask, tag, bits)
            if dldc_memo is not None:
                dldc_memo.put((word, mask), dldc)
                counts["dldc_seeded"] += 1
            alt_cost = alt.total_bits + ENCODING_TYPE_FLAG_BITS
            dldc_cost = dldc.total_bits + ENCODING_TYPE_FLAG_BITS
            chosen = dldc if dldc_cost < alt_cost else alt
            rejected = alt if chosen is dldc else dldc
            hook = (
                word,
                chosen.method,
                chosen.total_bits,
                rejected.method,
                rejected.total_bits,
                chosen.silent,
            )
            value = (chosen, hook, alt)
        # Context-free alternative: the decision key drops the old word.
        log_memo.put((word, None, mask, True), value)
        counts["slde_seeded"] += 1
    return counts


def prewarm_codecs(system, trace: StoreTrace) -> Dict[str, int]:
    """Batch-classify the trace's words and seed the system's codec memos.

    Returns seed counts (diagnostics only).  Best-effort by design: when
    numpy is missing, memoization is disabled, or a codec has no
    vectorized classifier, the affected memo is simply left cold.
    """
    stats = {
        "pairs": 0,
        "unique_log_rows": 0,
        "unique_words": 0,
        "slde_seeded": 0,
        "dldc_seeded": 0,
        "data_seeded": 0,
        "log_seeded": 0,
    }
    if not HAVE_NUMPY:
        return stats
    nvm = system.controller.nvm
    old = trace.pair_old
    new = trace.pair_new
    stats["pairs"] = int(old.size)

    # Unique (word, mask) rows over both sides of every recorded pair —
    # the inputs SLDE's size comparator will see during replay.
    masks = vec_dirty_byte_mask(old, new)
    rows = np.stack(
        [
            np.concatenate([old, new]),
            np.concatenate([masks, masks]).astype(np.uint64),
        ],
        axis=1,
    )
    if rows.size:
        rows = np.unique(rows, axis=0)
    log_words = np.ascontiguousarray(rows[:, 0]) if rows.size else old[:0]
    log_masks = rows[:, 1].astype(np.uint8) if rows.size else masks[:0]
    stats["unique_log_rows"] = int(log_words.size)

    # Unique word values the general-purpose codecs will meet: the log
    # pairs, the store values, and the setup values sharing a cache line
    # with some store — only dirty lines are ever written back, and a
    # written-back line encodes its clean neighbor words too.  Setup
    # words on untouched lines can never reach a codec, so seeding them
    # would be pure prewarm cost.
    is_store = (trace.op_kind == OP_STORE) | (trace.op_kind == OP_STORE_NT)
    line = np.uint64(system.config.caches.line_bytes)
    touched_lines = np.unique(trace.op_addr[is_store] // line)
    setup_touched = trace.setup_val[
        np.isin(trace.setup_addr // line, touched_lines)
    ]
    words = np.unique(
        np.concatenate([old, new, setup_touched, trace.op_val[is_store]])
    )
    stats["unique_words"] = int(words.size)

    stats["data_seeded"] = _warm_context_free(nvm.data_codec, words)
    if isinstance(nvm.log_codec, SldeCodec):
        counts = _warm_slde(nvm.log_codec, log_words, log_masks)
        stats.update(counts)
    else:
        stats["log_seeded"] = _warm_context_free(nvm.log_codec, words)
    return stats
