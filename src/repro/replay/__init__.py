"""Trace record/replay: capture a workload's store stream once, feed it
through any design/timing configuration without re-running the workload.

The paper's evaluation sweeps (Figs 12/13) score many design points over
identical store streams; this package is the interchange point that makes
that split explicit:

- :mod:`repro.replay.container` — the versioned columnar trace format
  (numpy columns, canonical SHA-256 digest for cache keying);
- :mod:`repro.replay.recorder` — :class:`TraceRecorder` taps on the
  :class:`~repro.core.system.System` plus :func:`record_trace`, which
  runs one cell with recording on;
- :mod:`repro.replay.replayer` — :func:`replay_trace`, which re-drives a
  machine from a trace, mirroring ``System.run`` bit for bit;
- :mod:`repro.replay.prewarm` — the vectorized encoding fast path: batch
  classification of the trace's word pairs (numpy kernels from
  :mod:`repro.encoding.vector`) used to pre-populate the result-inert
  codec memos before the replay loop starts.

Record → replay equivalence (same design and config: identical
RunResult, NVM image, trace events, fault-sweep outcomes) is pinned by
``tests/test_replay_differential.py``.
"""

from repro.replay.container import (
    StoreTrace,
    TRACE_VERSION,
    TraceDigestError,
    TraceError,
    TraceFormatError,
    TraceVersionError,
    load_trace,
    save_trace,
)
from repro.replay.recorder import TraceRecorder, record_trace
from repro.replay.replayer import apply_trace_setup, replay_trace, trace_transaction_bodies
from repro.replay.prewarm import prewarm_codecs

__all__ = [
    "StoreTrace",
    "TRACE_VERSION",
    "TraceError",
    "TraceFormatError",
    "TraceVersionError",
    "TraceDigestError",
    "load_trace",
    "save_trace",
    "TraceRecorder",
    "record_trace",
    "replay_trace",
    "apply_trace_setup",
    "trace_transaction_bodies",
    "prewarm_codecs",
]
