"""Re-driving a machine from a recorded trace.

:func:`replay_trace` is the replay-side twin of ``System.run``: it
rebuilds the pre-run memory image from the trace's setup stores, then
dispatches each recorded transaction on its recorded core, re-issuing
the recorded op stream through the normal :class:`TxContext` interface.
Everything below that interface — logger, caches, NVM timing, stats —
is the production path, untouched; same design and config therefore
produce a bit-identical RunResult, NVM image and event trace, while a
*different* design/config scores the identical store stream (the paper's
Fig 12/13 sweeps over one traffic pattern).

The only new cost model is "no cost": workload setup becomes a flat
array replay instead of Python data-structure construction, and the
optional codec prewarm (:mod:`repro.replay.prewarm`) batch-classifies
the trace's word pairs before the loop starts.  Both are result-inert.
"""

from typing import Callable, List

try:
    import numpy as np
except ImportError:  # pragma: no cover - the toolchain ships numpy
    np = None

from repro.core.system import RunResult
from repro.replay.container import (
    OP_COMPUTE,
    OP_LOAD,
    OP_STORE,
    OP_STORE_NT,
    StoreTrace,
    TraceError,
)


def apply_trace_setup(system, trace: StoreTrace) -> None:
    """Rebuild the pre-run memory image from the recorded setup stores.

    Setup stores are untimed and unlogged, so replaying them is pure
    data movement: the persistent/volatile split is one vectorized
    boundary compare (``is_persistent`` is ``addr >= nvmm_base``) and the
    NVMM side goes through :meth:`NvmArray.bulk_write_logical` instead of
    per-word ``setup_store`` calls.  With a recorder attached (recording
    a replay) the tap-firing scalar path is kept.
    """
    if system.recorder is not None or np is None:
        store = system.setup_store
        for addr, value in zip(trace.setup_addr.tolist(), trace.setup_val.tolist()):
            store(addr, value)
        return
    persistent = trace.setup_addr >= np.uint64(system.config.nvmm_base)
    system.controller.nvm.array.bulk_write_logical(
        trace.setup_addr[persistent].tolist(),
        trace.setup_val[persistent].tolist(),
    )
    if not persistent.all():
        volatile = ~persistent
        write = system.controller.dram.write_word
        for addr, value in zip(
            trace.setup_addr[volatile].tolist(),
            trace.setup_val[volatile].tolist(),
        ):
            write(addr, value)


def _make_body(ops) -> Callable:
    def body(ctx) -> None:
        for kind, addr, value in ops:
            if kind == OP_STORE:
                ctx.store(addr, value)
            elif kind == OP_LOAD:
                ctx.load(addr)
            elif kind == OP_STORE_NT:
                ctx.store_nt(addr, value)
            elif kind == OP_COMPUTE:
                ctx.compute(value)
            else:
                raise TraceError("unknown op kind %r in trace" % (kind,))

    return body


def trace_transaction_bodies(trace: StoreTrace) -> List[Callable]:
    """One ``body(ctx)`` callable per recorded transaction, in order."""
    kinds = trace.op_kind.tolist()
    addrs = trace.op_addr.tolist()
    values = trace.op_val.tolist()
    bodies = []
    for index in range(trace.n_transactions):
        lo, hi = trace.transaction_bounds(index)
        bodies.append(_make_body(list(zip(kinds[lo:hi], addrs[lo:hi], values[lo:hi]))))
    return bodies


def replay_trace(system, trace: StoreTrace, prewarm: bool = True) -> RunResult:
    """Execute ``trace`` on ``system``; the replay-side ``System.run``.

    Mirrors the run loop stage for stage (cold reset, setup, measurement
    reset, dispatch loop, drain) so a replayed same-design run is
    bit-identical to the recording run.  ``prewarm=False`` skips the
    vectorized codec prewarm (results never depend on it).
    """
    n_threads = trace.n_threads
    if n_threads > system.config.cores.n_cores:
        raise TraceError(
            "trace was recorded with %d threads; system has %d cores"
            % (n_threads, system.config.cores.n_cores)
        )
    if system._ran:
        system.reset_machine()
    system._ran = True
    apply_trace_setup(system, trace)
    system.reset_measurement()
    system._active_threads = n_threads
    if prewarm:
        from repro.replay.prewarm import prewarm_codecs

        prewarm_codecs(system, trace)
    bodies = trace_transaction_bodies(trace)
    cores = trace.tx_core.tolist()
    dispatched = 0
    for core, body in zip(cores, bodies):
        system.run_transaction(core, body)
        dispatched += 1
    elapsed = max(system.core_time_ns[:n_threads]) if n_threads else 0.0
    measured = system.stats.as_dict()
    end = system.logger.drain(elapsed)
    end = system.hierarchy.drain_all(end)
    if system._tx_table:
        system._truncate_log(end)
    return RunResult(
        transactions=dispatched,
        elapsed_ns=elapsed,
        stats=measured,
    )
