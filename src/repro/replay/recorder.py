"""Recording a workload's store stream into a :class:`StoreTrace`.

A :class:`TraceRecorder` hangs off ``system.recorder`` and observes a
normal timed run from two vantage points:

- the :class:`~repro.core.transaction.TxContext` op hooks capture the
  *program* — the exact sequence of loads, stores, non-temporal stores
  and compute delays each transaction body issued — plus the setup-phase
  stores that build the pre-run memory image;
- the :class:`~repro.core.system.System` taps capture the *dispatch
  order* (which core ran each transaction, preserving the recording
  run's interleaving) and the old/new word of every persistent
  transactional store (the raw material for the vectorized encoding
  fast path).

Recording does not perturb the run: the hooks only append to Python
lists, and the recorded run's RunResult is bit-identical to an
unrecorded one (pinned in ``tests/test_replay_differential.py``).
"""

from typing import Any, Dict, Optional

from repro.replay.container import (
    OP_COMPUTE,
    OP_LOAD,
    OP_STORE,
    OP_STORE_NT,
    StoreTrace,
    TraceError,
)

try:
    import numpy as np
except ImportError:  # pragma: no cover - the toolchain ships numpy
    np = None


class TraceRecorder:
    """Accumulates one run's store stream; ``finish`` yields the trace."""

    def __init__(self) -> None:
        self.setup_addr = []
        self.setup_val = []
        self.op_kind = []
        self.op_addr = []
        self.op_val = []
        self.tx_start = []
        self.tx_core = []
        self.pair_old = []
        self.pair_new = []

    # -- System taps ----------------------------------------------------

    def on_setup_store(self, addr: int, value: int) -> None:
        self.setup_addr.append(addr)
        self.setup_val.append(value)

    def on_tx_dispatch(self, core: int) -> None:
        self.tx_start.append(len(self.op_kind))
        self.tx_core.append(core)

    def on_tx_store(self, addr: int, old: int, new: int) -> None:
        self.pair_old.append(old)
        self.pair_new.append(new)

    # -- TxContext op taps ----------------------------------------------

    def on_load(self, addr: int) -> None:
        self.op_kind.append(OP_LOAD)
        self.op_addr.append(addr)
        self.op_val.append(0)

    def on_store(self, addr: int, value: int) -> None:
        self.op_kind.append(OP_STORE)
        self.op_addr.append(addr)
        self.op_val.append(value)

    def on_store_nt(self, addr: int, value: int) -> None:
        self.op_kind.append(OP_STORE_NT)
        self.op_addr.append(addr)
        self.op_val.append(value)

    def on_compute(self, cycles) -> None:
        if cycles != int(cycles) or cycles < 0:
            raise TraceError(
                "cannot record compute(%r): the trace op stream holds "
                "non-negative integer cycle counts" % (cycles,)
            )
        self.op_kind.append(OP_COMPUTE)
        self.op_addr.append(0)
        self.op_val.append(int(cycles))

    # -- finalization ---------------------------------------------------

    def finish(self, meta: Optional[Dict[str, Any]] = None) -> StoreTrace:
        """Freeze the accumulated stream into an immutable trace."""
        return StoreTrace(
            meta=dict(meta or {}),
            setup_addr=np.asarray(self.setup_addr, dtype="<u8"),
            setup_val=np.asarray(self.setup_val, dtype="<u8"),
            op_kind=np.asarray(self.op_kind, dtype="u1"),
            op_addr=np.asarray(self.op_addr, dtype="<u8"),
            op_val=np.asarray(self.op_val, dtype="<u8"),
            tx_start=np.asarray(self.tx_start, dtype="<u8"),
            tx_core=np.asarray(self.tx_core, dtype="<u4"),
            pair_old=np.asarray(self.pair_old, dtype="<u8"),
            pair_new=np.asarray(self.pair_new, dtype="<u8"),
        )


def record_trace(
    design: str,
    workload_name: str,
    dataset=None,
    scale=None,
    config=None,
    params=None,
    n_threads: Optional[int] = None,
    n_transactions: Optional[int] = None,
):
    """Run one grid cell with recording on; returns (trace, result, system).

    Mirrors :func:`repro.experiments.runner.run_design_system` exactly —
    same config/params/scale resolution, same run loop — so the recorded
    run's RunResult is the one the direct path would have produced.
    """
    from repro.experiments.runner import (
        ExperimentScale,
        MACRO_NAMES,
        default_config,
        resolve_params,
    )
    from repro.core.designs import make_system
    from repro.workloads.base import DatasetSize, make_workload

    dataset = dataset if dataset is not None else DatasetSize.SMALL
    scale = scale or ExperimentScale()
    config = config if config is not None else default_config()
    params = resolve_params(params, dataset)
    macro = workload_name in MACRO_NAMES
    system = make_system(design, config)
    workload = make_workload(workload_name, params)
    n_transactions = n_transactions or scale.transactions(macro, dataset)
    n_threads = n_threads or scale.threads(macro)

    recorder = TraceRecorder()
    system.recorder = recorder
    try:
        result = system.run(workload, n_transactions, n_threads)
    finally:
        system.recorder = None
    meta = {
        "design": design,
        "n_threads": n_threads,
        "n_transactions": n_transactions,
        "provenance": workload.trace_provenance(),
    }
    return recorder.finish(meta), result, system
